package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"vega/internal/core"
	"vega/internal/corpus"
	"vega/internal/faultinject"
	"vega/internal/generate"
)

// ---- shared fixture -------------------------------------------------------

var (
	fixMu     sync.Mutex
	fixCorpus *corpus.Corpus
	fixPipes  = map[int64]*core.Pipeline{}
)

func testCorpus(t *testing.T) *corpus.Corpus {
	t.Helper()
	fixMu.Lock()
	defer fixMu.Unlock()
	if fixCorpus == nil {
		c, err := corpus.Build()
		if err != nil {
			t.Fatal(err)
		}
		fixCorpus = c
	}
	return fixCorpus
}

func tinyConfig(seed int64) core.Config {
	cfg := core.DefaultConfig()
	cfg.MaxSamples = 300
	cfg.Pretrain = false
	cfg.Train.Epochs = 2
	cfg.Model.Dim = 32
	cfg.Model.EncLayers = 1
	cfg.Model.DecLayers = 1
	cfg.Model.MaxSeq = 128
	cfg.MaxOutPieces = 24
	cfg.Seed = seed
	cfg.Model.Seed = seed // distinct seeds must mean distinct weights
	return cfg
}

// freshPipeline builds a decode-capable pipeline with deterministic
// untrained weights (serving only needs output *stability*, not quality).
func freshPipeline(t *testing.T, seed int64) *core.Pipeline {
	t.Helper()
	p, err := core.New(testCorpus(t), tinyConfig(seed))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.InitUntrained(); err != nil {
		t.Fatal(err)
	}
	return p
}

// testPipeline memoizes freshPipeline per seed: serving is strictly
// read-only over the pipeline, so tests can share one instance.
func testPipeline(t *testing.T, seed int64) *core.Pipeline {
	t.Helper()
	c := testCorpus(t)
	_ = c
	fixMu.Lock()
	p := fixPipes[seed]
	fixMu.Unlock()
	if p != nil {
		return p
	}
	p = freshPipeline(t, seed)
	fixMu.Lock()
	fixPipes[seed] = p
	fixMu.Unlock()
	return p
}

// testServer stands up a server over a seed-1 boot snapshot plus an
// httptest listener; mut customizes the config before construction.
func testServer(t *testing.T, mut func(*Config)) (*Server, *httptest.Server) {
	t.Helper()
	cfg := Config{
		Workers:         2,
		QueueCap:        4,
		DefaultDeadline: 30 * time.Second,
		MaxDeadline:     time.Minute,
		DrainTimeout:    5 * time.Second,
		Policy:          DefaultDegradePolicy(),
		HealthTarget:    "RISCV",
	}
	if mut != nil {
		mut(&cfg)
	}
	srv := New(cfg, NewSnapshot("boot-1", "test", testPipeline(t, 1)))
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.sched.Stop()
	})
	return srv, ts
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, out.Bytes()
}

// fingerprint mirrors the core package's backendFingerprint: everything
// that must be invariant across snapshots built from the same seed.
func fingerprint(b *generate.Backend) string {
	var sb strings.Builder
	for _, f := range b.Functions {
		fmt.Fprintf(&sb, "%s|%s|%s|%s\n", f.Name, f.Module, f.Target, f.Err)
		for _, s := range f.Statements {
			fmt.Fprintf(&sb, "  %d|%q|%v|%v|%v\n", s.Row, s.Text, s.Absent, s.Score, s.Formula)
		}
	}
	return sb.String()
}

// ---- scheduler ------------------------------------------------------------

func TestSchedulerShedsAtQueueCap(t *testing.T) {
	s := NewScheduler(1, 1, nil)
	defer s.Stop()
	ctx := context.Background()

	block := make(chan struct{})
	started := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		ran, err := s.Do(ctx, func(context.Context) { close(started); <-block })
		if !ran || err != nil {
			t.Errorf("running job: ran=%v err=%v", ran, err)
		}
	}()
	<-started // worker is busy

	wg.Add(1)
	go func() {
		defer wg.Done()
		ran, err := s.Do(ctx, func(context.Context) {})
		if !ran || err != nil {
			t.Errorf("queued job: ran=%v err=%v", ran, err)
		}
	}()
	waitFor(t, func() bool { return s.waiting.Load() == 1 }) // queue slot taken

	if _, err := s.Do(ctx, func(context.Context) {}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third job: err=%v, want ErrQueueFull", err)
	}
	if ra := s.RetryAfter(); ra < 1 {
		t.Errorf("RetryAfter() = %d, want >= 1", ra)
	}
	if p := s.Pressure(); p < 0.5 {
		t.Errorf("Pressure() = %v with full worker + full queue, want >= 0.5", p)
	}

	close(block)
	wg.Wait()
}

func TestSchedulerSkipsDeadlineExpiredJob(t *testing.T) {
	s := NewScheduler(1, 1, nil)
	ctx := context.Background()

	block := make(chan struct{})
	started := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		s.Do(ctx, func(context.Context) { close(started); <-block })
	}()
	<-started

	// Enqueue behind the blocked worker with an already-short deadline.
	var ranDead bool
	shortCtx, cancel := context.WithTimeout(ctx, 10*time.Millisecond)
	defer cancel()
	wg.Add(1)
	go func() {
		defer wg.Done()
		ran, err := s.Do(shortCtx, func(context.Context) { ranDead = true })
		if ran || !errors.Is(err, context.DeadlineExceeded) {
			t.Errorf("dead job: ran=%v err=%v, want deadline exceeded", ran, err)
		}
	}()
	waitFor(t, func() bool { return s.waiting.Load() == 1 })
	<-shortCtx.Done() // deadline passes while queued

	close(block)
	s.Stop() // drains the queue; the dead job must be skipped, not run
	wg.Wait()
	if ranDead {
		t.Error("worker ran a job whose deadline expired while queued")
	}
}

func TestSchedulerStop(t *testing.T) {
	s := NewScheduler(2, 2, nil)
	ran := false
	if _, err := s.Do(context.Background(), func(context.Context) { ran = true }); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("job did not run")
	}
	s.Stop()
	s.Stop() // idempotent
	if _, err := s.Do(context.Background(), func(context.Context) {}); !errors.Is(err, ErrStopped) {
		t.Fatalf("Do after Stop: err=%v, want ErrStopped", err)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within 5s")
		}
		time.Sleep(time.Millisecond)
	}
}

// ---- snapshot / holder ----------------------------------------------------

func TestHolderSwapDrainsOldSnapshot(t *testing.T) {
	a := NewSnapshot("a", "test", nil)
	b := NewSnapshot("b", "test", nil)
	h := NewHolder(a)

	snap, release := h.Acquire()
	if snap != a {
		t.Fatalf("Acquire() = %s, want a", snap.ID)
	}

	// With a pinned, the swap installs b immediately but the drain misses
	// its (short) timeout.
	old, drained := h.Swap(b, 20*time.Millisecond)
	if old != a || drained {
		t.Fatalf("Swap() = (%s, %v), want (a, false)", old.ID, drained)
	}
	if h.Current() != b {
		t.Fatal("current snapshot is not b after swap")
	}
	if got, rel := h.Acquire(); got != b {
		t.Fatalf("post-swap Acquire() = %s, want b", got.ID)
	} else {
		rel()
	}
	if a.Drained() {
		t.Fatal("a reports drained while still pinned")
	}

	release()
	if !a.Drained() {
		t.Fatal("a not drained after last release")
	}

	// No pins: the next swap drains instantly.
	c := NewSnapshot("c", "test", nil)
	if _, drained := h.Swap(c, time.Second); !drained {
		t.Error("swap with no in-flight requests did not drain")
	}
}

func TestHolderNextID(t *testing.T) {
	h := NewHolder(NewSnapshot("boot-1", "test", nil))
	if id := h.NextID("reload"); id != "reload-1" {
		t.Errorf("NextID = %q, want reload-1", id)
	}
	if id := h.NextID("reload"); id != "reload-2" {
		t.Errorf("NextID = %q, want reload-2", id)
	}
}

func TestSnapshotHealthCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("generation test")
	}
	ctx := context.Background()

	good := NewSnapshot("good", "test", testPipeline(t, 1))
	if err := good.HealthCheck(ctx, "RISCV"); err != nil {
		t.Errorf("healthy snapshot rejected: %v", err)
	}

	// A pipeline with Stage 1 artifacts but no weights (a checkpoint that
	// failed to load, say) must be rejected before cutover.
	empty, err := core.New(testCorpus(t), tinyConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	bad := NewSnapshot("bad", "test", empty)
	if err := bad.HealthCheck(ctx, "RISCV"); err == nil {
		t.Error("weightless snapshot passed the health check")
	}
}

// ---- degrade policy -------------------------------------------------------

func TestDegradePolicyLadder(t *testing.T) {
	d := DefaultDegradePolicy()

	opt, reasons, trunc := d.Apply(core.GenOptions{}, 4, 0.2)
	if opt.Greedy || opt.Quantize || opt.MaxFunctions != 0 || len(reasons) != 0 || trunc != "" {
		t.Errorf("low pressure degraded: opt=%+v reasons=%v trunc=%q", opt, reasons, trunc)
	}

	opt, reasons, trunc = d.Apply(core.GenOptions{}, 4, 0.6)
	if !opt.Greedy || !opt.Quantize || opt.MaxFunctions != 0 || len(reasons) != 2 || trunc != "" {
		t.Errorf("mid pressure: opt=%+v reasons=%v trunc=%q, want greedy+quantize rungs only",
			opt, reasons, trunc)
	}

	opt, reasons, trunc = d.Apply(core.GenOptions{}, 4, 0.9)
	if !opt.Greedy || !opt.Quantize || opt.MaxFunctions != d.TruncateFunctions ||
		len(reasons) != 2 || trunc == "" {
		t.Errorf("high pressure: opt=%+v reasons=%v trunc=%q, want all rungs", opt, reasons, trunc)
	}

	// The truncation rationale is returned out of band: it must only reach
	// the degrade reasons when the backend actually comes back Truncated.
	for _, r := range reasons {
		if strings.Contains(r, "maxFunctions") {
			t.Errorf("truncation reason %q leaked into the unconditional reasons", r)
		}
	}

	// Beam width 1 has no beam to downgrade, and a request already below
	// the truncation cap keeps its own tighter cap; the quantize rung
	// (which implies greedy) still fires.
	opt, reasons, trunc = d.Apply(core.GenOptions{MaxFunctions: 3}, 1, 0.9)
	if !opt.Quantize || !opt.Greedy || opt.MaxFunctions != 3 || len(reasons) != 1 || trunc != "" {
		t.Errorf("tight request: opt=%+v reasons=%v trunc=%q, want quantize rung only",
			opt, reasons, trunc)
	}

	// The zero policy disables every rung.
	opt, reasons, trunc = DegradePolicy{}.Apply(core.GenOptions{}, 4, 1.0)
	if opt.Greedy || opt.Quantize || opt.MaxFunctions != 0 || len(reasons) != 0 || trunc != "" {
		t.Errorf("zero policy degraded: opt=%+v reasons=%v trunc=%q", opt, reasons, trunc)
	}
}

// ---- HTTP handlers --------------------------------------------------------

func TestHandleGenerateFunctionScope(t *testing.T) {
	if testing.Short() {
		t.Skip("generation test")
	}
	_, ts := testServer(t, nil)
	resp, body := postJSON(t, ts.URL+"/v1/generate",
		GenerateRequest{Target: "RISCV", Function: "getRelocType"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, body %s", resp.StatusCode, body)
	}
	var gr GenerateResponse
	if err := json.Unmarshal(body, &gr); err != nil {
		t.Fatal(err)
	}
	if gr.Snapshot != "boot-1" || gr.Degraded || len(gr.Functions) != 1 {
		t.Fatalf("response = snapshot=%s degraded=%v functions=%d, want boot-1/false/1",
			gr.Snapshot, gr.Degraded, len(gr.Functions))
	}
	if f := gr.Functions[0]; f.Name != "getRelocType" || f.Failed || len(f.Statements) == 0 {
		t.Errorf("function = %+v, want non-failed getRelocType with statements", f)
	}
}

func TestHandleGenerateValidation(t *testing.T) {
	_, ts := testServer(t, nil)
	cases := []struct {
		name string
		req  GenerateRequest
		want int
	}{
		{"unknown target", GenerateRequest{Target: "Z80"}, http.StatusBadRequest},
		{"unknown module", GenerateRequest{Target: "RISCV", Module: "XYZ"}, http.StatusBadRequest},
		{"unknown function", GenerateRequest{Target: "RISCV", Function: "nope"}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp, body := postJSON(t, ts.URL+"/v1/generate", tc.req)
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d, want %d (body %s)", tc.name, resp.StatusCode, tc.want, body)
		}
	}
	if resp, err := http.Get(ts.URL + "/v1/generate"); err != nil {
		t.Fatal(err)
	} else if resp.Body.Close(); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET: status %d, want 405", resp.StatusCode)
	}
	// Reload without a configured loader is 501, not a crash.
	if resp, _ := postJSON(t, ts.URL+"/admin/reload", ReloadRequest{Checkpoint: "x"}); resp.StatusCode != http.StatusNotImplemented {
		t.Errorf("reload without loader: status %d, want 501", resp.StatusCode)
	}
}

func TestHandleGenerateAdmitRejectFault(t *testing.T) {
	if testing.Short() {
		t.Skip("generation test")
	}
	faultinject.Reset()
	defer faultinject.Reset()
	_, ts := testServer(t, nil)

	faultinject.Arm(faultinject.ServeAdmitReject, "RISCV")
	resp, body := postJSON(t, ts.URL+"/v1/generate",
		GenerateRequest{Target: "RISCV", Function: "getRelocType"})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429 (body %s)", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After header")
	}
	var ej errorJSON
	if err := json.Unmarshal(body, &ej); err != nil || ej.RetryAfter < 1 {
		t.Errorf("429 body = %s (err %v), want retry_after_s >= 1", body, err)
	}

	// The fault is one-shot: the retry succeeds.
	resp, body = postJSON(t, ts.URL+"/v1/generate",
		GenerateRequest{Target: "RISCV", Function: "getRelocType"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("retry status %d, want 200 (body %s)", resp.StatusCode, body)
	}
}

func TestHandleGenerateHandlerPanicFault(t *testing.T) {
	if testing.Short() {
		t.Skip("generation test")
	}
	faultinject.Reset()
	defer faultinject.Reset()
	_, ts := testServer(t, nil)

	faultinject.Arm(faultinject.ServeHandlerPanic, "RISCV")
	resp, body := postJSON(t, ts.URL+"/v1/generate",
		GenerateRequest{Target: "RISCV", Function: "getRelocType"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want degraded 200 (body %s)", resp.StatusCode, body)
	}
	if resp.Header.Get("X-Vega-Degraded") != "true" {
		t.Error("panicked request missing X-Vega-Degraded header")
	}
	var gr GenerateResponse
	if err := json.Unmarshal(body, &gr); err != nil {
		t.Fatal(err)
	}
	if !gr.Degraded || !strings.Contains(strings.Join(gr.DegradeReasons, " "), "panic recovered") {
		t.Errorf("response = %+v, want degraded with panic reason", gr)
	}
}

func TestHandleGenerateDeadline(t *testing.T) {
	if testing.Short() {
		t.Skip("generation test")
	}
	_, ts := testServer(t, nil)
	// A whole-backend request cannot finish in 1ms: the deadline fires
	// either while queued or mid-generation; both answer 504.
	resp, body := postJSON(t, ts.URL+"/v1/generate",
		GenerateRequest{Target: "RISCV", DeadlineMS: 1})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504 (body %s)", resp.StatusCode, body)
	}
}

func TestHandleReload(t *testing.T) {
	if testing.Short() {
		t.Skip("generation test")
	}
	faultinject.Reset()
	defer faultinject.Reset()

	loaded := 0
	srv, ts := testServer(t, func(c *Config) {
		c.Loader = func(ctx context.Context, checkpoint string) (*core.Pipeline, error) {
			switch checkpoint {
			case "broken":
				return nil, errors.New("synthetic load failure")
			case "weightless":
				p, err := core.New(testCorpus(t), tinyConfig(1))
				return p, err
			default:
				loaded++
				return freshPipeline(t, 2), nil
			}
		}
	})

	// Happy path: health-checked cutover.
	resp, body := postJSON(t, ts.URL+"/admin/reload", ReloadRequest{Checkpoint: "ok"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reload status %d, body %s", resp.StatusCode, body)
	}
	var rr ReloadResponse
	if err := json.Unmarshal(body, &rr); err != nil {
		t.Fatal(err)
	}
	if !rr.Swapped || rr.Snapshot != "reload-1" || rr.Previous != "boot-1" || !rr.Drained {
		t.Fatalf("reload response = %+v", rr)
	}
	if cur := srv.Snapshot(); cur.ID != "reload-1" || cur.Source != "ok" {
		t.Fatalf("current snapshot = %s/%s, want reload-1/ok", cur.ID, cur.Source)
	}

	// Loader failure: 503, old snapshot keeps serving.
	if resp, _ := postJSON(t, ts.URL+"/admin/reload", ReloadRequest{Checkpoint: "broken"}); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("broken reload status %d, want 503", resp.StatusCode)
	}
	// Candidate fails the health check (no weights): rejected before cutover.
	if resp, _ := postJSON(t, ts.URL+"/admin/reload", ReloadRequest{Checkpoint: "weightless"}); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("weightless reload status %d, want 503", resp.StatusCode)
	}
	// Armed swap-fail fault: rejected before the loader even runs.
	faultinject.Arm(faultinject.ServeSwapFail, "ok")
	before := loaded
	if resp, _ := postJSON(t, ts.URL+"/admin/reload", ReloadRequest{Checkpoint: "ok"}); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("faulted reload status %d, want 503", resp.StatusCode)
	}
	if loaded != before {
		t.Error("swap-fail fault still invoked the loader")
	}
	if cur := srv.Snapshot(); cur.ID != "reload-1" {
		t.Errorf("failed reloads moved the snapshot to %s", cur.ID)
	}

	// Generation still works on the surviving snapshot.
	resp, body = postJSON(t, ts.URL+"/v1/generate",
		GenerateRequest{Target: "RISCV", Function: "getRelocType"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-reload generate status %d, body %s", resp.StatusCode, body)
	}
	var gr GenerateResponse
	if err := json.Unmarshal(body, &gr); err != nil {
		t.Fatal(err)
	}
	if gr.Snapshot != "reload-1" {
		t.Errorf("generate served from %s, want reload-1", gr.Snapshot)
	}
}

func TestHealthzAndTargetsAndShutdown(t *testing.T) {
	srv, ts := testServer(t, nil)

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hz healthzJSON
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || hz.Status != "ok" || hz.Snapshot != "boot-1" {
		t.Fatalf("healthz = %d %+v", resp.StatusCode, hz)
	}

	resp, err = http.Get(ts.URL + "/v1/targets")
	if err != nil {
		t.Fatal(err)
	}
	var tj targetsJSON
	if err := json.NewDecoder(resp.Body).Decode(&tj); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(tj.Targets) == 0 || len(tj.Modules) != len(corpus.Modules) || len(tj.Functions) == 0 {
		t.Fatalf("targets = %d targets / %d modules / %d functions", len(tj.Targets), len(tj.Modules), len(tj.Functions))
	}

	// Shutdown flips the server into draining: healthz 503, generate 503.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining healthz status %d, want 503", resp.StatusCode)
	}
	if resp, _ := postJSON(t, ts.URL+"/v1/generate", GenerateRequest{Target: "RISCV"}); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining generate status %d, want 503", resp.StatusCode)
	}
}
