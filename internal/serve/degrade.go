package serve

import (
	"fmt"

	"vega/internal/core"
)

// DegradePolicy is the graceful-degradation ladder applied between
// admission and execution. Rather than a binary serve-or-shed, moderate
// pressure cheapens requests in two rungs, each marked explicitly in the
// response so a degraded 200 is never mistaken for a full-fidelity one:
//
//  1. pressure >= GreedyAt:     beam search downgrades to greedy decoding.
//  2. pressure >= QuantizeAt:   decoding switches to the int8 quantized
//     weight view, greedy-first (ambiguous rows still re-decode float32,
//     so results stay full-accuracy — the rung trades only latency).
//  3. pressure >= TruncateAt:   whole-backend requests are truncated to
//     TruncateFunctions functions.
//  4. pressure >= SkipRepairAt: verify-enabled requests keep verification
//     but skip the CEGAR repair rounds (the most expensive re-decode work).
//
// Pressure is Scheduler.Pressure(): (waiting+running)/(queue+workers).
type DegradePolicy struct {
	// GreedyAt is the pressure at which beam→greedy kicks in (0 disables
	// the rung; 1 effectively never fires).
	GreedyAt float64
	// QuantizeAt is the pressure at which requests are forced onto the
	// quantized greedy decode path (0 disables the rung).
	QuantizeAt float64
	// TruncateAt is the pressure at which MaxFunctions truncation kicks
	// in (0 disables the rung).
	TruncateAt float64
	// SkipRepairAt is the pressure at which verify-enabled requests stop
	// running repair rounds — functions are still verified and statused,
	// but divergences are reported instead of repaired (0 disables).
	SkipRepairAt float64
	// TruncateFunctions is the per-request function cap applied at the
	// TruncateAt rung (ignored when the request already asks for fewer).
	TruncateFunctions int
}

// DefaultDegradePolicy mirrors the queue-sizing rationale in DESIGN.md:
// start cheapening at half load, start truncating (and dropping repair
// rounds) at three quarters.
func DefaultDegradePolicy() DegradePolicy {
	return DegradePolicy{GreedyAt: 0.5, QuantizeAt: 0.5, TruncateAt: 0.75, SkipRepairAt: 0.75, TruncateFunctions: 16}
}

// Apply folds the ladder into a request's GenOptions at the given
// pressure, returning the adjusted options and the human-readable reasons
// for each rung that fired (empty = full fidelity).
//
// The MaxFunctions rung is special: lowering the cap only degrades the
// response when the cap actually binds (the backend comes back
// Truncated), which is unknowable at admission. Its reason is therefore
// returned separately as truncReason, and the response layer appends it
// to the degrade reasons only on a Truncated backend — a scoped request
// smaller than the cap stays a full-fidelity 200.
func (d DegradePolicy) Apply(opt core.GenOptions, beamWidth int, pressure float64) (_ core.GenOptions, reasons []string, truncReason string) {
	if d.GreedyAt > 0 && pressure >= d.GreedyAt && beamWidth > 1 && !opt.Greedy {
		opt.Greedy = true
		reasons = append(reasons,
			fmt.Sprintf("beam(%d)->greedy: pressure %.2f >= %.2f", beamWidth, pressure, d.GreedyAt))
	}
	if d.QuantizeAt > 0 && pressure >= d.QuantizeAt && !opt.Quantize {
		// Quantized serving is greedy-first by definition: the rung exists
		// to shed decode latency, and ambiguous rows already re-decode at
		// full precision, so accuracy is unchanged either way.
		opt.Quantize = true
		opt.Greedy = true
		reasons = append(reasons,
			fmt.Sprintf("int8 quantized greedy decode: pressure %.2f >= %.2f", pressure, d.QuantizeAt))
	}
	if d.TruncateAt > 0 && pressure >= d.TruncateAt && d.TruncateFunctions > 0 {
		if opt.MaxFunctions == 0 || opt.MaxFunctions > d.TruncateFunctions {
			opt.MaxFunctions = d.TruncateFunctions
			truncReason = fmt.Sprintf("maxFunctions=%d: pressure %.2f >= %.2f",
				d.TruncateFunctions, pressure, d.TruncateAt)
		}
	}
	if d.SkipRepairAt > 0 && pressure >= d.SkipRepairAt && opt.Verify && !opt.SkipRepair {
		opt.SkipRepair = true
		reasons = append(reasons,
			fmt.Sprintf("repair rounds skipped: pressure %.2f >= %.2f", pressure, d.SkipRepairAt))
	}
	return opt, reasons, truncReason
}
