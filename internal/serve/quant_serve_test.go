package serve

import (
	"context"
	"encoding/json"
	"math"
	"net/http"
	"strings"
	"testing"
	"time"
)

// ---- scheduler Retry-After: idle EWMA --------------------------------------

// TestRetryAfterEmptyBacklogFloor is the regression test for the stale
// Retry-After estimate: with nothing waiting and nothing running, the
// duration EWMA learned from an earlier burst of heavy jobs is
// irrelevant, and a shed client must get the 1 s floor — not a
// multi-second backoff computed from history.
func TestRetryAfterEmptyBacklogFloor(t *testing.T) {
	s := NewScheduler(2, 4, nil)
	defer s.Stop()

	// Simulate a burst of 7-second jobs that finished a minute ago.
	s.avgJobBits.Store(math.Float64bits(7.0))
	s.lastDoneNS.Store(time.Now().Add(-time.Minute).UnixNano())

	if got := s.RetryAfter(); got != 1 {
		t.Errorf("RetryAfter with empty backlog = %d, want the 1 s floor", got)
	}
}

// TestRetryAfterDecaysWhileIdle pins the decay half: with a real backlog
// but a long-idle EWMA, the estimate must shrink toward the floor instead
// of quoting the stale average verbatim.
func TestRetryAfterDecaysWhileIdle(t *testing.T) {
	s := NewScheduler(1, 1, nil)
	defer s.Stop()

	started := make(chan struct{})
	release := make(chan struct{})
	go s.Do(context.Background(), func(context.Context) {
		close(started)
		<-release
	})
	<-started
	defer close(release)

	// An 8-second average whose last completion was three half-lives ago:
	// the effective average is 1 s, so backlog 1 (+1 headroom) over one
	// worker quotes ~2 s — not the stale ceil(2*8/1) = 16 s.
	s.avgJobBits.Store(math.Float64bits(8.0))
	s.lastDoneNS.Store(time.Now().Add(-3 * retryDecayHalfLife).UnixNano())

	got := s.RetryAfter()
	if got < 1 || got > 4 {
		t.Errorf("RetryAfter with 90s-idle EWMA = %d, want decayed estimate in [1,4]", got)
	}
}

// ---- degrade ladder: truncation marking ------------------------------------

// pressurize occupies one scheduler slot so admission-time pressure is
// nonzero, and returns the release func.
func pressurize(t *testing.T, s *Server) func() {
	t.Helper()
	started := make(chan struct{})
	release := make(chan struct{})
	go s.sched.Do(context.Background(), func(context.Context) {
		close(started)
		<-release
	})
	<-started
	var once bool
	return func() {
		if !once {
			once = true
			close(release)
		}
	}
}

// TestTruncationRungMarksOnlyWhenBound is the regression test for the
// misleading degraded:true: when pressure arms the MaxFunctions rung but
// the request is scoped below the cap, the cap never binds and the
// response must stay full-fidelity — no degraded flag, no header, no
// truncation reason.
func TestTruncationRungMarksOnlyWhenBound(t *testing.T) {
	if testing.Short() {
		t.Skip("generation test")
	}
	srv, ts := testServer(t, func(c *Config) {
		// Only the truncation rung, armed at any nonzero pressure.
		c.Policy = DegradePolicy{TruncateAt: 0.1, TruncateFunctions: 16}
	})
	release := pressurize(t, srv)
	defer release()

	if p := srv.sched.Pressure(); p < 0.1 {
		t.Fatalf("pressure %v, want >= 0.1 while a slot is held", p)
	}
	resp, body := postJSON(t, ts.URL+"/v1/generate",
		GenerateRequest{Target: "RISCV", Function: "getRelocType"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, body %s", resp.StatusCode, body)
	}
	var gr GenerateResponse
	if err := json.Unmarshal(body, &gr); err != nil {
		t.Fatal(err)
	}
	if gr.Truncated {
		t.Fatalf("single-function request came back Truncated")
	}
	if gr.Degraded {
		t.Errorf("unbound truncation rung marked the response degraded: %v", gr.DegradeReasons)
	}
	if h := resp.Header.Get("X-Vega-Degraded"); h != "" {
		t.Errorf("X-Vega-Degraded = %q on a full-fidelity response", h)
	}

	// The binding case still marks everything: a whole-backend request
	// under the same pressure is cut to 16 functions.
	resp, body = postJSON(t, ts.URL+"/v1/generate", GenerateRequest{Target: "RISCV"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, body %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &gr); err != nil {
		t.Fatal(err)
	}
	if !gr.Truncated || !gr.Degraded {
		t.Errorf("bound truncation: Truncated=%v Degraded=%v, want both", gr.Truncated, gr.Degraded)
	}
	if len(gr.Functions) != 16 {
		t.Errorf("got %d functions, want the rung's cap of 16", len(gr.Functions))
	}
	if resp.Header.Get("X-Vega-Degraded") != "true" {
		t.Error("bound truncation did not set X-Vega-Degraded")
	}
	if !strings.Contains(strings.Join(gr.DegradeReasons, " "), "maxFunctions") {
		t.Errorf("reasons %v missing the truncation rationale", gr.DegradeReasons)
	}
}

// TestMaxFunctionsBoundaryHeaders pins the request-level truncation
// boundary over HTTP: a cap equal to the scope's function count is not a
// truncation (no degraded marking), one below it is.
func TestMaxFunctionsBoundaryHeaders(t *testing.T) {
	if testing.Short() {
		t.Skip("generation test")
	}
	_, ts := testServer(t, nil)

	resp, body := postJSON(t, ts.URL+"/v1/generate",
		GenerateRequest{Target: "RISCV", Module: "EMI"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, body %s", resp.StatusCode, body)
	}
	var full GenerateResponse
	if err := json.Unmarshal(body, &full); err != nil {
		t.Fatal(err)
	}
	n := len(full.Functions)
	if n < 2 {
		t.Skipf("EMI has %d functions; boundary needs >= 2", n)
	}

	resp, body = postJSON(t, ts.URL+"/v1/generate",
		GenerateRequest{Target: "RISCV", Module: "EMI", MaxFunctions: n})
	var exact GenerateResponse
	if err := json.Unmarshal(body, &exact); err != nil {
		t.Fatal(err)
	}
	if exact.Truncated || exact.Degraded {
		t.Errorf("cap == count: Truncated=%v Degraded=%v, want neither", exact.Truncated, exact.Degraded)
	}
	if h := resp.Header.Get("X-Vega-Degraded"); h != "" {
		t.Errorf("cap == count set X-Vega-Degraded = %q", h)
	}

	resp, body = postJSON(t, ts.URL+"/v1/generate",
		GenerateRequest{Target: "RISCV", Module: "EMI", MaxFunctions: n - 1})
	var under GenerateResponse
	if err := json.Unmarshal(body, &under); err != nil {
		t.Fatal(err)
	}
	if !under.Truncated || !under.Degraded || len(under.Functions) != n-1 {
		t.Errorf("cap == count-1: Truncated=%v Degraded=%v functions=%d, want truncated %d",
			under.Truncated, under.Degraded, len(under.Functions), n-1)
	}
	if resp.Header.Get("X-Vega-Degraded") != "true" {
		t.Error("cap == count-1 did not set X-Vega-Degraded")
	}
}

// ---- quantized serving -----------------------------------------------------

// TestServeQuantizedMatchesFloat32 checks the request-level opt-in: a
// quantized request returns byte-identical functions to the float32 one
// (ambiguous rows re-decode at full precision) and is not marked
// degraded — an explicit client choice is not a degradation.
func TestServeQuantizedMatchesFloat32(t *testing.T) {
	if testing.Short() {
		t.Skip("generation test")
	}
	_, ts := testServer(t, nil)

	_, refBody := postJSON(t, ts.URL+"/v1/generate",
		GenerateRequest{Target: "RISCV", Module: "EMI"})
	var ref GenerateResponse
	if err := json.Unmarshal(refBody, &ref); err != nil {
		t.Fatal(err)
	}

	resp, qBody := postJSON(t, ts.URL+"/v1/generate",
		GenerateRequest{Target: "RISCV", Module: "EMI", Quantize: true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, body %s", resp.StatusCode, qBody)
	}
	var q GenerateResponse
	if err := json.Unmarshal(qBody, &q); err != nil {
		t.Fatal(err)
	}
	if q.Degraded {
		t.Errorf("explicit quantize request marked degraded: %v", q.DegradeReasons)
	}
	refFns, _ := json.Marshal(ref.Functions)
	qFns, _ := json.Marshal(q.Functions)
	if string(refFns) != string(qFns) {
		t.Error("quantized serve output differs from float32")
	}
}
