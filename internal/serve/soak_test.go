package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"vega/internal/core"
	"vega/internal/faultinject"
)

// soakResult is one request's observed outcome.
type soakResult struct {
	status   int
	elapsed  time.Duration
	degraded bool
	resp     GenerateResponse
	body     []byte
}

// TestServeSoak is the PR's acceptance scenario: concurrent generate
// requests driven through a queue cap of 2 with one worker, a hot
// snapshot swap fired while traffic is in flight, and an armed
// serve-handler-panic fault. The contract under all of that:
//
//   - every request ends in exactly one of {200, 200-degraded, 429, 504};
//   - no request hangs past its deadline;
//   - the swap never 500s (or drops) an in-flight request;
//   - responses for identical inputs are byte-identical before and after
//     the swap (the reload rebuilds the same seed).
func TestServeSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	faultinject.Reset()
	defer faultinject.Reset()

	const reqDeadline = 20 * time.Second

	srv := New(Config{
		Workers:         1,
		QueueCap:        2,
		DefaultDeadline: reqDeadline,
		MaxDeadline:     time.Minute,
		DrainTimeout:    30 * time.Second,
		Policy:          DefaultDegradePolicy(),
		HealthTarget:    "RISCV",
		Loader: func(ctx context.Context, checkpoint string) (*core.Pipeline, error) {
			// The reload rebuilds the boot snapshot's seed, so outputs
			// must be byte-identical across the cutover.
			return freshPipeline(t, 1), nil
		},
	}, NewSnapshot("boot-1", "test", testPipeline(t, 1)))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.sched.Stop()

	do := func(req GenerateRequest) soakResult {
		start := time.Now()
		resp, body := postJSON(t, ts.URL+"/v1/generate", req)
		r := soakResult{
			status:   resp.StatusCode,
			elapsed:  time.Since(start),
			degraded: resp.Header.Get("X-Vega-Degraded") == "true",
			body:     body,
		}
		if r.status == http.StatusOK {
			if err := json.Unmarshal(body, &r.resp); err != nil {
				t.Errorf("unparseable 200 body: %v (%s)", err, body)
			}
		}
		return r
	}

	// Phase 0: an uncontended baseline — the pre-swap reference bytes.
	baseline := do(GenerateRequest{Target: "RISCV", Function: "getRelocType"})
	if baseline.status != http.StatusOK || baseline.resp.Degraded {
		t.Fatalf("baseline request: %d degraded=%v (%s)", baseline.status, baseline.resp.Degraded, baseline.body)
	}
	if baseline.resp.Snapshot != "boot-1" {
		t.Fatalf("baseline served from %q, want boot-1", baseline.resp.Snapshot)
	}

	// The panic fault is keyed to the ARM target so it hits exactly the
	// one ARM request and never the byte-identity probes.
	faultinject.Arm(faultinject.ServeHandlerPanic, "ARM")

	// Phase 1: a long module-scoped request occupies the single worker...
	var slow, armed soakResult
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		slow = do(GenerateRequest{Target: "RISCV", Module: "EMI", DeadlineMS: 30000})
	}()
	waitFor(t, func() bool { return srv.sched.inflight.Load() >= 1 })

	// ...the ARM request takes a queue slot (guaranteed admitted, so the
	// armed panic deterministically fires in its job)...
	wg.Add(1)
	go func() {
		defer wg.Done()
		armed = do(GenerateRequest{Target: "ARM", Function: "getRelocType"})
	}()
	waitFor(t, func() bool { return srv.sched.waiting.Load() >= 1 })

	// ...and a burst of 5 more races a hot reload through the remaining
	// capacity (1 queue slot), so most are shed with 429.
	results := make([]soakResult, 5)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = do(GenerateRequest{Target: "RISCV", Function: "getRelocType"})
		}(i)
	}

	var reload ReloadResponse
	reloadResp, reloadBody := postJSON(t, ts.URL+"/admin/reload", ReloadRequest{Checkpoint: "soak"})
	if err := json.Unmarshal(reloadBody, &reload); err != nil {
		t.Fatalf("reload body: %v (%s)", err, reloadBody)
	}
	wg.Wait()

	// The swap must succeed and must not have 500'd (or dropped) the
	// in-flight slow request, which keeps serving from its pinned snapshot.
	if reloadResp.StatusCode != http.StatusOK || !reload.Swapped {
		t.Fatalf("mid-run reload failed: %d %s", reloadResp.StatusCode, reloadBody)
	}
	if slow.status != http.StatusOK {
		t.Fatalf("in-flight request during swap got %d (%s), want 200", slow.status, slow.body)
	}
	if slow.resp.Snapshot != "boot-1" {
		t.Errorf("in-flight request served from %q, want the pinned boot-1", slow.resp.Snapshot)
	}
	if armed.status != http.StatusOK || !containsPanicReason(armed.resp.DegradeReasons) {
		t.Errorf("panicked request: %d %s, want a degraded 200 with a panic reason", armed.status, armed.body)
	}

	// Phase 2: post-swap probes for the same input as the baseline.
	post := make([]soakResult, 2)
	for i := range post {
		post[i] = do(GenerateRequest{Target: "RISCV", Function: "getRelocType"})
		if post[i].status != http.StatusOK {
			t.Fatalf("post-swap probe got %d (%s)", post[i].status, post[i].body)
		}
		if post[i].resp.Snapshot != reload.Snapshot {
			t.Errorf("post-swap probe served from %q, want %q", post[i].resp.Snapshot, reload.Snapshot)
		}
	}

	all := append([]soakResult{baseline, slow, armed}, append(results, post...)...)
	allowed := map[int]bool{
		http.StatusOK:              true,
		http.StatusTooManyRequests: true,
		http.StatusGatewayTimeout:  true,
	}
	var ok200, panicked int
	var funcBodies [][]byte
	for i, r := range all {
		if !allowed[r.status] {
			t.Errorf("request %d: status %d outside {200, 429, 504} (%s)", i, r.status, r.body)
		}
		if r.elapsed > reqDeadline+15*time.Second {
			t.Errorf("request %d hung %s past its deadline", i, r.elapsed-reqDeadline)
		}
		if r.status != http.StatusOK {
			continue
		}
		ok200++
		if r.degraded != r.resp.Degraded {
			t.Errorf("request %d: X-Vega-Degraded header %v disagrees with body %v", i, r.degraded, r.resp.Degraded)
		}
		if containsPanicReason(r.resp.DegradeReasons) {
			panicked++
			continue // panic responses carry no functions
		}
		// Byte-identity across the swap: every full 200 for getRelocType
		// must serialize identically, whichever snapshot served it. (A
		// degrade rung may have fired under pressure — truncation cannot
		// change a single-function result.)
		if len(r.resp.Functions) == 1 && r.resp.Functions[0].Name == "getRelocType" {
			b, err := json.Marshal(r.resp.Functions)
			if err != nil {
				t.Fatal(err)
			}
			funcBodies = append(funcBodies, b)
		}
	}
	if ok200 == 0 {
		t.Fatal("no request succeeded; the soak asserted nothing")
	}
	if panicked != 1 {
		t.Errorf("%d panic-degraded responses, want exactly 1 (one-shot fault)", panicked)
	}
	if len(funcBodies) < 3 { // baseline + 2 post-swap probes at minimum
		t.Fatalf("only %d full getRelocType responses; need the baseline and both post-swap probes", len(funcBodies))
	}
	for i := 1; i < len(funcBodies); i++ {
		if string(funcBodies[i]) != string(funcBodies[0]) {
			t.Errorf("response %d differs byte-for-byte from the pre-swap baseline:\n%s\nvs\n%s",
				i, funcBodies[i], funcBodies[0])
		}
	}
}

func containsPanicReason(reasons []string) bool {
	for _, r := range reasons {
		if strings.Contains(r, "panic recovered") {
			return true
		}
	}
	return false
}
