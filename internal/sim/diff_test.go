package sim

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"vega/internal/compiler"
	"vega/internal/corpus"
	"vega/internal/cpp"
	"vega/internal/interp"
)

// Differential fuzz: the same randomly generated scalar program executed
// through the C++ interpreter (the evaluation oracle's engine) and through
// compile→simulate at O0 and O3 on two targets must return identical
// values. Programs are constructed to stay inside the shared semantic core
// the two stacks guarantee: int64 wrap-around arithmetic, shifts masked
// &63 on both sides, division/modulo only by nonzero constants,
// comparisons only in branch conditions, and loops bounded by construction
// (no step-limit divergence).

// fuzzGen builds one random program simultaneously as a compiler mini-AST
// function and (via render) as C++ source.
type fuzzGen struct {
	rng      *rand.Rand
	params   []string
	locals   []string // assignable scalars, declared "int v = 0;"
	counters int      // while-loop counters minted so far
	loops    int      // for-loop vars minted so far
	inScope  []string // loop vars readable at the current point
	depth    int      // statement nesting depth
}

func (g *fuzzGen) readable() []string {
	out := append([]string{}, g.params...)
	out = append(out, g.locals...)
	return append(out, g.inScope...)
}

func (g *fuzzGen) expr(depth int) compiler.Expr {
	if depth <= 0 || g.rng.Intn(3) == 0 {
		if g.rng.Intn(2) == 0 {
			return compiler.Const{Value: int64(g.rng.Intn(10))}
		}
		vars := g.readable()
		return compiler.Var{Name: vars[g.rng.Intn(len(vars))]}
	}
	op := [...]string{"+", "-", "*", "&", "|", "^", "<<", ">>", "/", "%"}[g.rng.Intn(10)]
	l := g.expr(depth - 1)
	var r compiler.Expr
	switch op {
	case "<<", ">>":
		r = compiler.Const{Value: int64(g.rng.Intn(8))}
	case "/", "%":
		r = compiler.Const{Value: int64(1 + g.rng.Intn(9))}
	default:
		r = g.expr(depth - 1)
	}
	return compiler.Bin{Op: op, L: l, R: r}
}

func (g *fuzzGen) cond() compiler.Expr {
	op := [...]string{"==", "!=", "<", "<=", ">", ">="}[g.rng.Intn(6)]
	return compiler.Bin{Op: op, L: g.expr(1), R: g.expr(1)}
}

func (g *fuzzGen) assign() compiler.Stmt {
	return compiler.Assign{
		Name: g.locals[g.rng.Intn(len(g.locals))],
		E:    g.expr(2),
	}
}

// stmts generates n statements at the current nesting depth.
func (g *fuzzGen) stmts(n int) []compiler.Stmt {
	var out []compiler.Stmt
	for i := 0; i < n; i++ {
		switch k := g.rng.Intn(6); {
		case k <= 2 || g.depth >= 2:
			out = append(out, g.assign())
		case k == 3:
			g.depth++
			st := compiler.If{Cond: g.cond(), Then: g.stmts(1 + g.rng.Intn(2))}
			if g.rng.Intn(2) == 0 {
				st.Else = g.stmts(1)
			}
			g.depth--
			out = append(out, st)
		case k == 4:
			// Counted loop over a fresh variable, readable in its body.
			v := fmt.Sprintf("i%d", g.loops)
			g.loops++
			from := int64(g.rng.Intn(3))
			to := from + int64(g.rng.Intn(6))
			g.depth++
			g.inScope = append(g.inScope, v)
			body := g.stmts(1 + g.rng.Intn(2))
			g.inScope = g.inScope[:len(g.inScope)-1]
			g.depth--
			out = append(out, compiler.For{
				Var: v, From: compiler.Const{Value: from}, To: compiler.Const{Value: to}, Body: body,
			})
		default:
			// Bounded while: a dedicated counter no other statement can
			// touch guarantees termination in both executions.
			w := fmt.Sprintf("w%d", g.counters)
			g.counters++
			k := int64(1 + g.rng.Intn(5))
			g.depth++
			body := g.stmts(1 + g.rng.Intn(2))
			g.depth--
			body = append(body, compiler.Assign{
				Name: w, E: compiler.Bin{Op: "-", L: compiler.Var{Name: w}, R: compiler.Const{Value: 1}},
			})
			out = append(out,
				compiler.Assign{Name: w, E: compiler.Const{Value: k}},
				compiler.While{
					Cond: compiler.Bin{Op: ">", L: compiler.Var{Name: w}, R: compiler.Const{Value: 0}},
					Body: body,
				})
		}
	}
	return out
}

// fuzzProgram builds one scalar program "f" plus the local names that need
// declarations (locals first, then while counters — all zero-initialized
// explicitly in both representations).
func fuzzProgram(rng *rand.Rand) (*compiler.Program, []string) {
	g := &fuzzGen{rng: rng, params: []string{"p0", "p1", "p2"}, locals: []string{"a", "b", "c"}}
	var body []compiler.Stmt
	for _, v := range g.locals {
		body = append(body, compiler.Assign{Name: v, E: compiler.Const{Value: 0}})
	}
	body = append(body, g.stmts(3+rng.Intn(4))...)
	body = append(body, compiler.Return{E: g.expr(2)})
	fn := &compiler.Function{Name: "f", Params: g.params, Body: body}
	decls := append([]string{}, g.locals...)
	for i := 0; i < g.counters; i++ {
		decls = append(decls, fmt.Sprintf("w%d", i))
	}
	return &compiler.Program{Funcs: []*compiler.Function{fn}}, decls
}

// --- mini-AST → C++ renderer (the interpreter's input) ---

func renderExpr(e compiler.Expr) string {
	switch x := e.(type) {
	case compiler.Const:
		return fmt.Sprintf("%d", x.Value)
	case compiler.Var:
		return x.Name
	case compiler.Bin:
		return "(" + renderExpr(x.L) + " " + x.Op + " " + renderExpr(x.R) + ")"
	}
	panic(fmt.Sprintf("renderExpr: unsupported %T", e))
}

func renderStmts(b *strings.Builder, sts []compiler.Stmt, indent string) {
	for _, st := range sts {
		switch x := st.(type) {
		case compiler.Assign:
			fmt.Fprintf(b, "%s%s = %s;\n", indent, x.Name, renderExpr(x.E))
		case compiler.If:
			fmt.Fprintf(b, "%sif (%s) {\n", indent, renderExpr(x.Cond))
			renderStmts(b, x.Then, indent+"  ")
			if len(x.Else) > 0 {
				fmt.Fprintf(b, "%s} else {\n", indent)
				renderStmts(b, x.Else, indent+"  ")
			}
			fmt.Fprintf(b, "%s}\n", indent)
		case compiler.For:
			fmt.Fprintf(b, "%sfor (int %s = %s; %s < %s; %s = %s + 1) {\n",
				indent, x.Var, renderExpr(x.From), x.Var, renderExpr(x.To), x.Var, x.Var)
			renderStmts(b, x.Body, indent+"  ")
			fmt.Fprintf(b, "%s}\n", indent)
		case compiler.While:
			fmt.Fprintf(b, "%swhile (%s) {\n", indent, renderExpr(x.Cond))
			renderStmts(b, x.Body, indent+"  ")
			fmt.Fprintf(b, "%s}\n", indent)
		case compiler.Return:
			fmt.Fprintf(b, "%sreturn %s;\n", indent, renderExpr(x.E))
		default:
			panic(fmt.Sprintf("renderStmts: unsupported %T", st))
		}
	}
}

func renderCpp(p *compiler.Program, decls []string) string {
	fn := p.Funcs[0]
	var b strings.Builder
	ps := make([]string, len(fn.Params))
	for i, p := range fn.Params {
		ps[i] = "int " + p
	}
	fmt.Fprintf(&b, "int %s(%s) {\n", fn.Name, strings.Join(ps, ", "))
	for _, d := range decls {
		fmt.Fprintf(&b, "  int %s = 0;\n", d)
	}
	// The explicit zero-assigns that mirror these declarations are the
	// first statements of the body; rendering them again is harmless
	// (idempotent) and keeps the two representations trivially aligned.
	renderStmts(&b, fn.Body, "  ")
	b.WriteString("}\n")
	return b.String()
}

func TestDifferentialInterpVsSim(t *testing.T) {
	const seeds = 50
	targets := map[string]*compiler.Tables{}
	for _, name := range []string{"RISCV", "RI5CY"} {
		spec := corpus.FindTarget(name)
		if spec == nil {
			t.Fatalf("unknown target %s", name)
		}
		targets[name] = compiler.TablesFromSpec(spec)
	}

	// Parallel on purpose: under -race this doubles as a check that the
	// compiler tables and the two executors are safe to share.
	var wg sync.WaitGroup
	for seed := int64(0); seed < seeds; seed++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			diffOneSeed(t, targets, seed)
		}(seed)
	}
	wg.Wait()
}

func diffOneSeed(t *testing.T, targets map[string]*compiler.Tables, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	prog, decls := fuzzProgram(rng)
	src := renderCpp(prog, decls)

	fn, err := cpp.ParseFunction(src)
	if err != nil {
		t.Errorf("seed %d: generated source does not parse: %v\n%s", seed, err, src)
		return
	}

	argSets := [][]int64{
		{0, 0, 0},
		{1, 2, 3},
		{-7, 13, -1},
		{int64(rng.Intn(2000) - 1000), int64(rng.Intn(2000) - 1000), int64(rng.Intn(9))},
	}

	// Interpreter reference outcomes.
	want := make([]int64, len(argSets))
	for i, args := range argSets {
		env := interp.NewEnv()
		ret, err := interp.Call(fn, env, map[string]any{
			"p0": args[0], "p1": args[1], "p2": args[2],
		})
		if err != nil {
			t.Errorf("seed %d args %v: interp error: %v\n%s", seed, args, err, src)
			return
		}
		v, ok := ret.(int64)
		if !ok {
			t.Errorf("seed %d args %v: interp returned %T (%v), want int64\n%s", seed, args, ret, ret, src)
			return
		}
		want[i] = v
	}

	for name, tb := range targets {
		for _, opt := range []int{0, 3} {
			obj, err := compiler.Compile(prog, tb, opt)
			if err != nil {
				t.Errorf("seed %d: %s O%d compile: %v\n%s", seed, name, opt, err, src)
				return
			}
			vm, err := New(obj, tb, DefaultConfig())
			if err != nil {
				t.Errorf("seed %d: %s O%d vm: %v", seed, name, opt, err)
				return
			}
			for i, args := range argSets {
				res, err := vm.Run("f", args...)
				if err != nil {
					t.Errorf("seed %d args %v: %s O%d run: %v\n%s", seed, args, name, opt, err, src)
					return
				}
				if res.Return != want[i] {
					t.Errorf("seed %d args %v: %s O%d returned %d, interp returned %d\n%s",
						seed, args, name, opt, res.Return, want[i], src)
					return
				}
			}
		}
	}
}
