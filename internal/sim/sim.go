// Package sim executes compiled objects from internal/compiler on a
// cycle-counting virtual machine — the offline stand-in for the paper's
// QEMU (RISC-V), PULP RTL platform (RI5CY) and XSIM (xCORE). It both
// verifies functional results (so -O0 and -O3 must agree, and a corrected
// VEGA backend must match its base compiler) and charges per-instruction
// cycles from the backend's latency tables.
package sim

import (
	"fmt"

	"vega/internal/compiler"
)

// Result is one program run's outcome.
type Result struct {
	Return       int64
	Cycles       int64
	Instructions int64
}

// Config bounds execution.
type Config struct {
	MaxInstructions int64
	MemoryWords     int
	BranchPenalty   int64 // extra cycles on a taken branch
	CallPenalty     int64
}

// DefaultConfig sizes the VM for the benchmark workloads.
func DefaultConfig() Config {
	return Config{
		MaxInstructions: 80_000_000,
		MemoryWords:     1 << 16,
		BranchPenalty:   1,
		CallPenalty:     2,
	}
}

// VM executes one object.
type VM struct {
	cfg    Config
	obj    *compiler.Object
	tables *compiler.Tables

	mem       []int64
	arrayBase map[string]int
	heapTop   int
}

// New prepares a VM: arrays are laid out at the bottom of memory, frames
// grow from the top.
func New(obj *compiler.Object, tb *compiler.Tables, cfg Config) (*VM, error) {
	vm := &VM{cfg: cfg, obj: obj, tables: tb,
		mem:       make([]int64, cfg.MemoryWords),
		arrayBase: map[string]int{},
	}
	top := 0
	for name, n := range obj.Arrays {
		_ = name
		_ = n
	}
	// Deterministic layout: sorted names.
	for _, name := range sortedNames(obj.Arrays) {
		vm.arrayBase[name] = top
		top += obj.Arrays[name]
	}
	vm.heapTop = top
	if top >= cfg.MemoryWords/2 {
		return nil, fmt.Errorf("sim: arrays exceed memory")
	}
	for name, vals := range obj.Init {
		base, ok := vm.arrayBase[name]
		if !ok {
			return nil, fmt.Errorf("sim: init for unknown array %q", name)
		}
		copy(vm.mem[base:], vals)
	}
	return vm, nil
}

func sortedNames(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// Run executes a function with arguments and returns its result and cost.
func (vm *VM) Run(fn string, args ...int64) (Result, error) {
	var res Result
	ret, err := vm.call(fn, args, vm.cfg.MemoryWords-64, &res, 0)
	if err != nil {
		return res, err
	}
	res.Return = ret
	return res, nil
}

type hwLoop struct {
	start, end int
	count      int64
}

func (vm *VM) call(fn string, args []int64, frameBase int, res *Result, depth int) (int64, error) {
	if depth > 64 {
		return 0, fmt.Errorf("sim: call depth exceeded")
	}
	f, ok := vm.obj.Funcs[fn]
	if !ok {
		return 0, fmt.Errorf("sim: unknown function %q", fn)
	}
	if frameBase-f.FrameSlots <= vm.heapTop {
		return 0, fmt.Errorf("sim: stack overflow")
	}
	regs := make([]int64, 64)
	for i, a := range args {
		regs[4+i] = a
	}
	slots := frameBase - f.FrameSlots

	// Prologue/epilogue cost: one store + one load per saved register.
	saveCost := int64(len(f.SavedRegs)) * int64(vm.lat(vm.tables.StoreOp)+vm.lat(vm.tables.LoadOp))
	res.Cycles += saveCost
	res.Instructions += int64(2 * len(f.SavedRegs))

	var loops []hwLoop
	pc := 0
	for {
		if pc < 0 || pc >= len(f.Code) {
			return regs[1], nil // fell off the end: implicit return
		}
		if res.Instructions > vm.cfg.MaxInstructions {
			return 0, fmt.Errorf("sim: instruction budget exceeded in %q", fn)
		}
		in := f.Code[pc]
		res.Instructions++
		res.Cycles += int64(vm.lat(in.Opcode))

		switch in.Kind {
		case compiler.KMovImm:
			regs[in.Dst] = in.Imm
		case compiler.KMov:
			regs[in.Dst] = regs[in.A]
		case compiler.KAlu:
			v, err := alu(in.Op, regs[in.A], regs[in.B])
			if err != nil {
				return 0, err
			}
			regs[in.Dst] = v
			// Multiplies and divides cost extra on every target.
			if in.Op == "*" {
				res.Cycles += 2
			}
			if in.Op == "/" || in.Op == "%" {
				res.Cycles += 8
			}
		case compiler.KLoad:
			addr, err := vm.address(in, regs, slots)
			if err != nil {
				return 0, err
			}
			regs[in.Dst] = vm.mem[addr]
		case compiler.KStore:
			addr, err := vm.address(in, regs, slots)
			if err != nil {
				return 0, err
			}
			vm.mem[addr] = regs[in.B]
		case compiler.KBr:
			pc = in.Target
			res.Cycles += vm.cfg.BranchPenalty
			continue
		case compiler.KBrCond:
			take, err := compare(in.Op, regs[in.A], regs[in.B])
			if err != nil {
				return 0, err
			}
			if take {
				pc = in.Target
				res.Cycles += vm.cfg.BranchPenalty
				continue
			}
		case compiler.KCall:
			res.Cycles += vm.cfg.CallPenalty
			ret, err := vm.call(in.Sym, regs[4:8], slots, res, depth+1)
			if err != nil {
				return 0, err
			}
			regs[1] = ret
		case compiler.KRet:
			res.Cycles += saveCost // epilogue restores
			return regs[1], nil
		case compiler.KLoopStart:
			loops = append(loops, hwLoop{start: pc + 1, end: in.Target, count: regs[in.A]})
		case compiler.KSIMD:
			if err := vm.simd(in, regs); err != nil {
				return 0, err
			}
		default:
			return 0, fmt.Errorf("sim: unknown instruction kind %d", in.Kind)
		}
		pc++
		// Hardware loop back-edges are free: when the pc reaches the loop
		// end, jump back until the count drains.
		if n := len(loops); n > 0 && pc == loops[n-1].end {
			loops[n-1].count--
			if loops[n-1].count > 0 {
				pc = loops[n-1].start
			} else {
				loops = loops[:n-1]
			}
		}
	}
}

func (vm *VM) lat(opcode int) int {
	if l, ok := vm.tables.Latency[opcode]; ok {
		return l
	}
	return 1
}

// address resolves a load/store: array symbol + index register, or a
// frame slot.
func (vm *VM) address(in compiler.MInst, regs []int64, slots int) (int, error) {
	if in.Sym == "" {
		return slots + int(in.Imm), nil
	}
	base, ok := vm.arrayBase[in.Sym]
	if !ok {
		return 0, fmt.Errorf("sim: unknown array %q", in.Sym)
	}
	idx := int(regs[in.A])
	if idx < 0 || idx >= vm.obj.Arrays[in.Sym] {
		return 0, fmt.Errorf("sim: index %d out of range for %q", idx, in.Sym)
	}
	return base + idx, nil
}

func (vm *VM) simd(in compiler.MInst, regs []int64) error {
	i := int(regs[in.A])
	dst, ok1 := vm.arrayBase[in.SymDst]
	a, ok2 := vm.arrayBase[in.Sym]
	b, ok3 := vm.arrayBase[in.Sym2]
	if !ok1 || !ok2 || !ok3 {
		return fmt.Errorf("sim: SIMD over unknown arrays")
	}
	if i < 0 || i+4 > vm.obj.Arrays[in.SymDst] || i+4 > vm.obj.Arrays[in.Sym] || i+4 > vm.obj.Arrays[in.Sym2] {
		return fmt.Errorf("sim: SIMD lane out of range at %d", i)
	}
	for k := 0; k < 4; k++ {
		v, err := alu(in.Op, vm.mem[a+i+k], vm.mem[b+i+k])
		if err != nil {
			return err
		}
		vm.mem[dst+i+k] = v
	}
	return nil
}

func alu(op string, a, b int64) (int64, error) {
	switch op {
	case "+":
		return a + b, nil
	case "-":
		return a - b, nil
	case "*":
		return a * b, nil
	case "/":
		if b == 0 {
			return 0, fmt.Errorf("sim: division by zero")
		}
		return a / b, nil
	case "%":
		if b == 0 {
			return 0, fmt.Errorf("sim: modulo by zero")
		}
		return a % b, nil
	case "&":
		return a & b, nil
	case "|":
		return a | b, nil
	case "^":
		return a ^ b, nil
	case "<<":
		return a << uint(b&63), nil
	case ">>":
		return a >> uint(b&63), nil
	}
	// Comparisons as values.
	t, err := compare(op, a, b)
	if err != nil {
		return 0, err
	}
	if t {
		return 1, nil
	}
	return 0, nil
}

func compare(op string, a, b int64) (bool, error) {
	switch op {
	case "==":
		return a == b, nil
	case "!=":
		return a != b, nil
	case "<":
		return a < b, nil
	case "<=":
		return a <= b, nil
	case ">":
		return a > b, nil
	case ">=":
		return a >= b, nil
	}
	return false, fmt.Errorf("sim: unknown comparison %q", op)
}
