package sim

import (
	"testing"

	"vega/internal/bench"
	"vega/internal/compiler"
	"vega/internal/corpus"
)

func run(t *testing.T, w bench.Workload, target string, opt int) Result {
	t.Helper()
	tb := compiler.TablesFromSpec(corpus.FindTarget(target))
	obj, err := compiler.Compile(w.Program, tb, opt)
	if err != nil {
		t.Fatalf("%s O%d: %v", w.Name, opt, err)
	}
	vm, err := New(obj, tb, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := vm.Run(w.Entry, w.Args...)
	if err != nil {
		t.Fatalf("%s O%d: %v", w.Name, opt, err)
	}
	return res
}

func TestSimpleSumProgram(t *testing.T) {
	p := &compiler.Program{
		Arrays: map[string]int{"a": 4},
		Init:   map[string][]int64{"a": {10, 20, 30, 40}},
		Funcs: []*compiler.Function{{
			Name: "main",
			Body: []compiler.Stmt{
				compiler.Assign{Name: "s", E: compiler.Const{Value: 0}},
				compiler.For{Var: "i", From: compiler.Const{Value: 0}, To: compiler.Const{Value: 4},
					Body: []compiler.Stmt{
						compiler.Assign{Name: "s", E: compiler.Bin{Op: "+", L: compiler.Var{Name: "s"}, R: compiler.Load{Array: "a", Index: compiler.Var{Name: "i"}}}},
					}},
				compiler.Return{E: compiler.Var{Name: "s"}},
			},
		}},
	}
	w := bench.Workload{Name: "sum", Program: p, Entry: "main"}
	for _, target := range []string{"RISCV", "RI5CY", "XCore", "Mips"} {
		for _, opt := range []int{0, 3} {
			res := run(t, w, target, opt)
			if res.Return != 100 {
				t.Errorf("%s O%d: sum = %d, want 100", target, opt, res.Return)
			}
		}
	}
}

func TestCallsAndRecursionDepth(t *testing.T) {
	p := &compiler.Program{
		Arrays: map[string]int{},
		Funcs: []*compiler.Function{
			{Name: "double", Params: []string{"x"},
				Body: []compiler.Stmt{compiler.Return{E: compiler.Bin{Op: "*", L: compiler.Var{Name: "x"}, R: compiler.Const{Value: 2}}}}},
			{Name: "main",
				Body: []compiler.Stmt{
					compiler.Assign{Name: "r", E: compiler.CallExpr{Name: "double", Args: []compiler.Expr{compiler.CallExpr{Name: "double", Args: []compiler.Expr{compiler.Const{Value: 5}}}}}},
					compiler.Return{E: compiler.Var{Name: "r"}},
				}},
		},
	}
	w := bench.Workload{Name: "calls", Program: p, Entry: "main"}
	for _, opt := range []int{0, 3} {
		res := run(t, w, "RISCV", opt)
		if res.Return != 20 {
			t.Errorf("O%d: nested call = %d, want 20", opt, res.Return)
		}
	}
}

// The core Fig. 10 invariant: -O0 and -O3 agree functionally on every
// workload of every suite, and -O3 is faster.
func TestSuitesFunctionalAndFaster(t *testing.T) {
	for _, target := range []string{"RISCV", "RI5CY", "XCore"} {
		suite := bench.SuiteFor(target)
		if len(suite) == 0 {
			t.Fatalf("no suite for %s", target)
		}
		for _, w := range suite {
			r0 := run(t, w, target, 0)
			r3 := run(t, w, target, 3)
			if r0.Return != r3.Return {
				t.Errorf("%s %s: O0=%d O3=%d", target, w.Name, r0.Return, r3.Return)
			}
			if r3.Cycles >= r0.Cycles {
				t.Errorf("%s %s: O3 (%d cycles) not faster than O0 (%d)", target, w.Name, r3.Cycles, r0.Cycles)
			}
		}
	}
}

func TestSuiteSizesMatchPaper(t *testing.T) {
	if n := len(bench.SPECLike()); n != 28 {
		t.Errorf("SPEC-like = %d, want 28", n)
	}
	if n := len(bench.PULPLike()); n != 69 {
		t.Errorf("PULP-like = %d, want 69", n)
	}
	if n := len(bench.EmbenchLike()); n != 22 {
		t.Errorf("Embench-like = %d, want 22", n)
	}
}

func TestHardwareLoopSpeedsUpRI5CY(t *testing.T) {
	// The same DSP kernel must get a bigger O3 speedup on RI5CY (hardware
	// loops + SIMD) than on plain RISCV.
	w := bench.PULPLike()[1] // vecadd
	speedup := func(target string) float64 {
		r0 := run(t, w, target, 0)
		r3 := run(t, w, target, 3)
		return float64(r0.Cycles) / float64(r3.Cycles)
	}
	if sRI, sRV := speedup("RI5CY"), speedup("RISCV"); sRI <= sRV {
		t.Errorf("RI5CY speedup %.2f should beat RISCV %.2f on DSP kernels", sRI, sRV)
	}
}

func TestDeterministicCycles(t *testing.T) {
	w := bench.EmbenchLike()[0]
	a := run(t, w, "XCore", 3)
	b := run(t, w, "XCore", 3)
	if a.Cycles != b.Cycles || a.Return != b.Return {
		t.Error("simulation not deterministic")
	}
}

func TestOutOfRangeIndexFails(t *testing.T) {
	p := &compiler.Program{
		Arrays: map[string]int{"a": 2},
		Funcs: []*compiler.Function{{
			Name: "main",
			Body: []compiler.Stmt{compiler.Return{E: compiler.Load{Array: "a", Index: compiler.Const{Value: 9}}}},
		}},
	}
	tb := compiler.TablesFromSpec(corpus.FindTarget("RISCV"))
	obj, err := compiler.Compile(p, tb, 0)
	if err != nil {
		t.Fatal(err)
	}
	vm, _ := New(obj, tb, DefaultConfig())
	if _, err := vm.Run("main"); err == nil {
		t.Error("expected out-of-range error")
	}
}
