package sim

import (
	"testing"

	"vega/internal/bench"
	"vega/internal/compiler"
	"vega/internal/corpus"
)

// TestHardwareLoopSemantics verifies the zero-overhead loop executes the
// body exactly count times and nests correctly.
func TestHardwareLoopSemantics(t *testing.T) {
	tb := compiler.TablesFromSpec(corpus.FindTarget("RI5CY"))
	p := &compiler.Program{
		Arrays: map[string]int{},
		Funcs: []*compiler.Function{{
			Name: "main",
			Body: []compiler.Stmt{
				compiler.Assign{Name: "s", E: compiler.Const{Value: 0}},
				compiler.For{Var: "i", From: compiler.Const{Value: 0}, To: compiler.Const{Value: 10},
					Body: []compiler.Stmt{
						compiler.Assign{Name: "s", E: compiler.Bin{Op: "+", L: compiler.Var{Name: "s"}, R: compiler.Var{Name: "i"}}},
					}},
				compiler.Return{E: compiler.Var{Name: "s"}},
			},
		}},
	}
	obj, err := compiler.Compile(p, tb, 3)
	if err != nil {
		t.Fatal(err)
	}
	var hasLoop bool
	for _, in := range obj.Funcs["main"].Code {
		if in.Kind == compiler.KLoopStart {
			hasLoop = true
		}
	}
	if !hasLoop {
		t.Fatal("expected a hardware loop")
	}
	vm, err := New(obj, tb, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := vm.Run("main")
	if err != nil {
		t.Fatal(err)
	}
	if res.Return != 45 {
		t.Errorf("sum 0..9 = %d, want 45", res.Return)
	}
}

// TestHardwareLoopEmptyTripCount verifies the skip guard for empty loops.
func TestHardwareLoopEmptyTripCount(t *testing.T) {
	tb := compiler.TablesFromSpec(corpus.FindTarget("RI5CY"))
	p := &compiler.Program{
		Arrays: map[string]int{},
		Funcs: []*compiler.Function{{
			Name:   "main",
			Params: []string{"n"},
			Body: []compiler.Stmt{
				compiler.Assign{Name: "s", E: compiler.Const{Value: 7}},
				compiler.For{Var: "i", From: compiler.Const{Value: 0}, To: compiler.Var{Name: "n"},
					Body: []compiler.Stmt{
						compiler.Assign{Name: "s", E: compiler.Bin{Op: "+", L: compiler.Var{Name: "s"}, R: compiler.Const{Value: 1}}},
					}},
				compiler.Return{E: compiler.Var{Name: "s"}},
			},
		}},
	}
	obj, err := compiler.Compile(p, tb, 3)
	if err != nil {
		t.Fatal(err)
	}
	vm, _ := New(obj, tb, DefaultConfig())
	for n, want := range map[int64]int64{0: 7, 1: 8, 5: 12} {
		res, err := vm.Run("main", n)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if res.Return != want {
			t.Errorf("n=%d: got %d, want %d", n, res.Return, want)
		}
	}
}

// TestSIMDRemainderHandling verifies vectorized loops with non-multiple-of
// four trip counts.
func TestSIMDRemainderHandling(t *testing.T) {
	tb := compiler.TablesFromSpec(corpus.FindTarget("RI5CY"))
	const n = 10 // 2 SIMD iterations + 2 scalar remainder
	a := make([]int64, n)
	bv := make([]int64, n)
	for i := range a {
		a[i] = int64(i * 3)
		bv[i] = int64(100 - i)
	}
	p := &compiler.Program{
		Arrays: map[string]int{"a": n, "b": n, "c": n},
		Init:   map[string][]int64{"a": a, "b": bv},
		Funcs: []*compiler.Function{{
			Name: "main",
			Body: []compiler.Stmt{
				compiler.For{Var: "i", From: compiler.Const{Value: 0}, To: compiler.Const{Value: n},
					Body: []compiler.Stmt{
						compiler.Store{Array: "c", Index: compiler.Var{Name: "i"},
							Value: compiler.Bin{Op: "+",
								L: compiler.Load{Array: "a", Index: compiler.Var{Name: "i"}},
								R: compiler.Load{Array: "b", Index: compiler.Var{Name: "i"}}}},
					}},
				compiler.Return{E: compiler.Load{Array: "c", Index: compiler.Const{Value: n - 1}}},
			},
		}},
	}
	obj, err := compiler.Compile(p, tb, 3)
	if err != nil {
		t.Fatal(err)
	}
	var simd bool
	for _, in := range obj.Funcs["main"].Code {
		if in.Kind == compiler.KSIMD {
			simd = true
		}
	}
	if !simd {
		t.Fatal("expected SIMD vectorization")
	}
	vm, _ := New(obj, tb, DefaultConfig())
	res, err := vm.Run("main")
	if err != nil {
		t.Fatal(err)
	}
	want := a[n-1] + bv[n-1]
	if res.Return != want {
		t.Errorf("c[%d] = %d, want %d", n-1, res.Return, want)
	}
}

// TestCrossTargetCycleVariation: the same program costs different cycles
// on different targets (latency tables differ).
func TestCrossTargetCycleVariation(t *testing.T) {
	// At -O0 the per-target ABI shows through: prologues save every
	// callee-saved register, and RISCV (12), Mips (9) and XCore (7)
	// differ.
	w := bench.SPECLike()[0]
	cycles := map[string]int64{}
	for _, tgt := range []string{"RISCV", "XCore", "Mips"} {
		tb := compiler.TablesFromSpec(corpus.FindTarget(tgt))
		obj, err := compiler.Compile(w.Program, tb, 0)
		if err != nil {
			t.Fatal(err)
		}
		vm, _ := New(obj, tb, DefaultConfig())
		res, err := vm.Run(w.Entry, w.Args...)
		if err != nil {
			t.Fatal(err)
		}
		cycles[tgt] = res.Cycles
	}
	if cycles["RISCV"] == cycles["XCore"] && cycles["XCore"] == cycles["Mips"] {
		t.Errorf("cycle model insensitive to target: %v", cycles)
	}
}
