package eval

import (
	"vega/internal/corpus"
	"vega/internal/interp"
)

// Case is one regression invocation: named arguments plus optional global
// overrides (ambient stubs like MF).
type Case struct {
	Args    map[string]any
	Globals map[string]any
}

// Suite builds the regression input grid for one interface function on
// one target. The grids are target-parametric: they enumerate the
// target's own fixups, registers and instructions plus out-of-range
// probes, mirroring how LLVM's regression suites exercise each target's
// own ISA surface.
func Suite(name string, u *Universe) []Case {
	if b, ok := suites[name]; ok {
		return b(u)
	}
	return nil
}

// SuiteNames lists the functions with regression suites.
func SuiteNames() []string {
	out := make([]string, 0, len(suites))
	for _, f := range corpus.AllFuncs() {
		if _, ok := suites[f.Name]; ok {
			out = append(out, f.Name)
		}
	}
	return out
}

var suites = map[string]func(u *Universe) []Case{
	// --- SEL ---
	"isLegalAddressingMode": func(u *Universe) []Case {
		var cs []Case
		for _, off := range []int64{-70000, -4096, -2048, -16, 0, 15, 2047, 2048, 65536} {
			for _, scale := range []int64{0, 1, 2, 4, 8} {
				cs = append(cs, Case{Args: map[string]any{"BaseOffs": off, "HasBaseReg": true, "Scale": scale}})
			}
		}
		return cs
	},
	"getSetCCResultType": func(u *Universe) []Case { return []Case{{Args: map[string]any{}}} },
	"getBranchOpcodeForCond": func(u *Universe) []Case {
		var cs []Case
		for _, cc := range []int64{0, 1, 2, 3, 99} {
			cs = append(cs, Case{Args: map[string]any{"CC": cc}})
		}
		return cs
	},
	"getUncondBranchOpcode": func(u *Universe) []Case { return []Case{{Args: map[string]any{}}} },
	"isLegalICmpImmediate": func(u *Universe) []Case {
		var cs []Case
		for _, imm := range []int64{-70000, -2048, -1, 0, 1, 2047, 2048, 100000} {
			cs = append(cs, Case{Args: map[string]any{"Imm": imm}})
		}
		return cs
	},
	"selectLoadOpcode":  sizeGrid,
	"selectStoreOpcode": sizeGrid,
	"getCallOpcode":     func(u *Universe) []Case { return []Case{{Args: map[string]any{}}} },
	"shouldExpandSelect": func(u *Universe) []Case {
		var cs []Case
		for _, vt := range []int64{8, 16, 32, 64, 128} {
			cs = append(cs, Case{Args: map[string]any{"VT": vt}})
		}
		return cs
	},
	"selectMoveImmOpcode": func(u *Universe) []Case {
		var cs []Case
		for _, imm := range []int64{-5000, -2048, 0, 2047, 2048, 1 << 20} {
			cs = append(cs, Case{Args: map[string]any{"Imm": imm}})
		}
		return cs
	},

	// --- REG ---
	"getFrameRegister": func(u *Universe) []Case {
		return []Case{
			{Args: map[string]any{"MF": MFObj(true, 0, false, 0)}},
			{Args: map[string]any{"MF": MFObj(false, 0, false, 0)}},
		}
	},
	"getCalleeSavedRegs": func(u *Universe) []Case {
		return []Case{{Args: map[string]any{"Regs": u.RegListObj()}}}
	},
	"isReservedReg": func(u *Universe) []Case {
		var cs []Case
		for i := 0; i < u.T.NumRegs; i++ {
			cs = append(cs, Case{Args: map[string]any{"Reg": u.RegValue(i)}})
		}
		cs = append(cs, Case{Args: map[string]any{"Reg": int64(4095)}})
		return cs
	},
	"eliminateFrameIndex": func(u *Universe) []Case {
		var cs []Case
		for _, fi := range []int64{0, 1, 4, 100} {
			for _, off := range []int64{0, 4, 1024, 5000} {
				for _, ss := range []int64{0, 64} {
					cs = append(cs, Case{Args: map[string]any{
						"FrameIndex": fi, "Offset": off, "MF": MFObj(true, ss, false, 0),
					}})
				}
			}
		}
		return cs
	},
	"getStackAlignment": func(u *Universe) []Case { return []Case{{Args: map[string]any{}}} },
	"hasReservedCallFrame": func(u *Universe) []Case {
		return []Case{
			{Args: map[string]any{"MF": MFObj(true, 0, false, 0)}},
			{Args: map[string]any{"MF": MFObj(true, 0, true, 0)}},
			{Args: map[string]any{"MF": MFObj(true, 128, false, 0)}},
		}
	},

	// --- OPT ---
	"getInstSizeInBytes": opcodeGrid("Opcode"),
	"isLoadFromStackSlot": func(u *Universe) []Case {
		return miOperandGrid(u)
	},
	"isStoreToStackSlot": func(u *Universe) []Case {
		return miOperandGrid(u)
	},
	"isProfitableToHoist": func(u *Universe) []Case {
		var cs []Case
		for _, store := range []bool{false, true} {
			for _, vec := range []bool{false, true} {
				for _, br := range []bool{false, true} {
					for _, nops := range []int{0, 4} {
						ops := make([]*interp.Object, nops)
						for i := range ops {
							ops[i] = OperandObj(true, u.RegValue(i), false, 0, false)
						}
						mi := u.InstObj(0, map[string]bool{"mayStore": store, "isVector": vec, "isBranch": br}, ops...)
						cs = append(cs, Case{Args: map[string]any{"MI": mi}})
					}
				}
			}
		}
		return cs
	},
	"convertToHardwareLoop": func(u *Universe) []Case {
		var cs []Case
		ops := probeOpcodes(u.T)
		for _, op := range ops {
			for _, tc := range []int64{0, 1, 2, 10} {
				cs = append(cs, Case{Args: map[string]any{"Opcode": op, "TripCount": tc}})
			}
		}
		return cs
	},
	"enablePostRAScheduler": func(u *Universe) []Case {
		return []Case{
			{Args: map[string]any{}, Globals: map[string]any{"MF": MFObj(true, 0, false, 0)}},
			{Args: map[string]any{}, Globals: map[string]any{"MF": MFObj(true, 0, false, 2)}},
		}
	},
	"expandPseudoMove": func(u *Universe) []Case {
		return []Case{
			{Args: map[string]any{"IsImm": true}},
			{Args: map[string]any{"IsImm": false}},
		}
	},
	"expandRealtimeOp": func(u *Universe) []Case {
		return []Case{
			{Args: map[string]any{"Dir": int64(0)}},
			{Args: map[string]any{"Dir": int64(1)}},
		}
	},

	// --- SCH ---
	"getInstrLatency": opcodeGrid("Opcode"),
	"isSchedulingBoundary": func(u *Universe) []Case {
		var cs []Case
		for _, op := range probeOpcodes(u.T) {
			mi := u.InstObj(op, map[string]bool{})
			cs = append(cs, Case{Args: map[string]any{"MI": mi}})
		}
		term := u.InstObj(0, map[string]bool{"isTerminator": true})
		cs = append(cs, Case{Args: map[string]any{"MI": term}})
		return cs
	},
	"hasDelaySlot": opcodeGrid("Opcode"),
	"getSchedPriority": func(u *Universe) []Case {
		var cs []Case
		for _, br := range []bool{false, true} {
			for _, ld := range []bool{false, true} {
				for _, vec := range []bool{false, true} {
					mi := u.InstObj(0, map[string]bool{"isBranch": br, "mayLoad": ld, "isVector": vec})
					cs = append(cs, Case{Args: map[string]any{"MI": mi}})
				}
			}
		}
		return cs
	},
	"shouldClusterMemOps": func(u *Universe) []Case {
		var cs []Case
		loads := u.T.Insts(corpus.ClassLoad)
		probe := []int64{int64(loads[0].Opcode), int64(loads[len(loads)-1].Opcode), int64(u.T.InstSet[0].Opcode)}
		for _, a := range probe {
			for _, b := range probe {
				for _, n := range []int64{1, 2, 3, 4, 5, 8, 9} {
					cs = append(cs, Case{Args: map[string]any{"First": a, "Second": b, "NumLoads": n}})
				}
			}
		}
		return cs
	},

	// --- EMI ---
	"getRelocType": func(u *Universe) []Case {
		var cs []Case
		for _, kind := range fixupKindGrid(u) {
			for _, pcrel := range []bool{false, true} {
				cs = append(cs, Case{Args: map[string]any{
					"Ctx":     interp.NewObject("MCContext"),
					"Target":  ValueTargetObj(1, false),
					"Fixup":   FixupObj(kind, 0),
					"IsPCRel": pcrel,
				}})
			}
		}
		return cs
	},
	"adjustFixupValue": func(u *Universe) []Case {
		var cs []Case
		for _, kind := range fixupKindGrid(u) {
			for _, v := range []int64{0, 0x1234, 0xFFFFF, 1 << 20} {
				cs = append(cs, Case{Args: map[string]any{"Fixup": FixupObj(kind, 0), "Value": v}})
			}
		}
		return cs
	},
	"applyFixup": func(u *Universe) []Case {
		var cs []Case
		for i := range u.T.Fixups() {
			if i > 2 {
				break
			}
			for _, v := range []int64{0, 0x12345678} {
				cs = append(cs, Case{Args: map[string]any{
					"Fixup": FixupObj(u.FixupValue(i), 8),
					"Data":  u.DataObj(),
					"Value": v,
				}})
			}
		}
		return cs
	},
	"encodeInstruction": func(u *Universe) []Case {
		var cs []Case
		for _, bits := range []int64{0x11223344, 0} {
			mi := u.InstObj(int64(u.T.InstSet[0].Opcode), nil)
			mi.Fields["bits"] = bits
			cs = append(cs, Case{Args: map[string]any{
				"MI": mi, "OS": u.StreamObj(), "STI": nil,
			}})
		}
		return cs
	},
	"getMachineOpValue": func(u *Universe) []Case {
		var cs []Case
		for i := 0; i < u.T.NumRegs; i += 5 {
			cs = append(cs, Case{Args: map[string]any{
				"MI": u.InstObj(0, nil), "MO": OperandObj(true, u.RegValue(i), false, 0, false),
			}})
		}
		for _, imm := range []int64{0, 5, 4095} {
			cs = append(cs, Case{Args: map[string]any{
				"MI": u.InstObj(0, nil), "MO": OperandObj(false, 0, true, imm, false),
			}})
		}
		cs = append(cs, Case{Args: map[string]any{
			"MI": u.InstObj(0, nil), "MO": OperandObj(false, 0, false, 0, false),
		}})
		return cs
	},
	"writeNopData": func(u *Universe) []Case {
		var cs []Case
		for _, n := range []int64{0, 1, 2, 3, 4, 8, 12, 16} {
			cs = append(cs, Case{Args: map[string]any{"OS": u.StreamObj(), "Count": n}})
		}
		return cs
	},
	"getFixupKindNumBits": func(u *Universe) []Case {
		var cs []Case
		for _, kind := range fixupKindGrid(u) {
			cs = append(cs, Case{Args: map[string]any{"Kind": kind}})
		}
		return cs
	},
	"printOperand": func(u *Universe) []Case {
		var cs []Case
		mk := func(mo *interp.Object) Case {
			mi := u.InstObj(0, nil, mo)
			return Case{Args: map[string]any{"MI": mi, "OpNo": int64(0), "OS": u.StreamObj()}}
		}
		cs = append(cs, mk(OperandObj(true, u.RegValue(u.T.SPIndex), false, 0, false)))
		cs = append(cs, mk(OperandObj(true, u.RegValue(3%u.T.NumRegs), false, 0, false)))
		cs = append(cs, mk(OperandObj(false, 0, true, 42, false)))
		return cs
	},
	"getRegisterName": func(u *Universe) []Case {
		var cs []Case
		for i := 0; i < u.T.NumRegs; i += 3 {
			cs = append(cs, Case{Args: map[string]any{"Reg": u.RegValue(i)}})
		}
		cs = append(cs, Case{Args: map[string]any{"Reg": u.RegValue(u.T.SPIndex)}})
		if u.T.FPIndex >= 0 {
			cs = append(cs, Case{Args: map[string]any{"Reg": u.RegValue(u.T.FPIndex)}})
		}
		return cs
	},

	// --- ASS ---
	"matchRegisterName": func(u *Universe) []Case {
		names := []string{"sp", "fp", "ra", "zz", ""}
		names = append(names, u.T.RegName(0), u.T.RegName(u.T.NumRegs-1), u.T.RegPrefix+"99", "q7")
		var cs []Case
		for _, n := range names {
			cs = append(cs, Case{Args: map[string]any{"Name": n}})
		}
		return cs
	},
	"matchInstruction": func(u *Universe) []Case {
		set := map[string]bool{}
		var names []string
		for _, inst := range u.T.InstSet {
			if !set[inst.Mnemonic] {
				set[inst.Mnemonic] = true
				names = append(names, inst.Mnemonic)
			}
		}
		names = append(names, "nosuchop")
		var cs []Case
		for _, n := range names {
			cs = append(cs, Case{Args: map[string]any{"Mnemonic": n}})
		}
		return cs
	},
	"validateImmediate": func(u *Universe) []Case {
		var cs []Case
		for _, imm := range []int64{-70000, -4096, -2048, -3, 0, 3, 2047, 2048, 4094, 70000} {
			for _, br := range []bool{false, true} {
				cs = append(cs, Case{Args: map[string]any{"Imm": imm, "IsBranch": br}})
			}
		}
		return cs
	},
	"parseDirective": func(u *Universe) []Case {
		var cs []Case
		for _, d := range []string{".word", ".align", ".reloc", ".set", ".cc_top", ".cc_bottom", ".foo"} {
			cs = append(cs, Case{Args: map[string]any{"Directive": d}})
		}
		return cs
	},
	"isValidCPU": func(u *Universe) []Case {
		var cs []Case
		for _, c := range []string{"generic", u.T.ProcName, "generic-" + lowerName(u.T), "mips32r2", "cortex-a8", "x"} {
			cs = append(cs, Case{Args: map[string]any{"CPU": c}})
		}
		return cs
	},

	// --- DIS ---
	"decodeGPRRegisterClass": func(u *Universe) []Case {
		var cs []Case
		for _, n := range []int64{0, 1, int64(u.T.NumRegs) - 1, int64(u.T.NumRegs), 100} {
			cs = append(cs, Case{Args: map[string]any{"MI": u.InstObj(0, nil), "RegNo": n}})
		}
		return cs
	},
	"decodeSImmOperand": func(u *Universe) []Case {
		var cs []Case
		for _, imm := range []int64{0, 1, 0x7FF, 0x800, 0xFFF, 0xFFFFF} {
			cs = append(cs, Case{Args: map[string]any{"MI": u.InstObj(0, nil), "Imm": imm}})
		}
		return cs
	},
	"getInstructionOpcode": func(u *Universe) []Case {
		var cs []Case
		for _, op := range probeOpcodes(u.T) {
			cs = append(cs, Case{Args: map[string]any{"MI": u.InstObj(0, nil), "Insn": op}})
		}
		return cs
	},
}

func sizeGrid(u *Universe) []Case {
	var cs []Case
	for _, s := range []int64{1, 2, 4, 8} {
		cs = append(cs, Case{Args: map[string]any{"Size": s}})
	}
	return cs
}

// opcodeGrid probes every instruction opcode of the target plus an
// unknown one.
func opcodeGrid(param string) func(u *Universe) []Case {
	return func(u *Universe) []Case {
		var cs []Case
		for _, op := range probeOpcodes(u.T) {
			cs = append(cs, Case{Args: map[string]any{param: op}})
		}
		return cs
	}
}

// probeOpcodes lists all target opcodes plus an out-of-set probe.
func probeOpcodes(t *corpus.TargetSpec) []int64 {
	var out []int64
	for _, inst := range t.InstSet {
		out = append(out, int64(inst.Opcode))
	}
	return append(out, 9999)
}

// miOperandGrid covers opcode × frame-index operand combinations.
func miOperandGrid(u *Universe) []Case {
	var cs []Case
	for _, op := range probeOpcodes(u.T) {
		for _, fi := range []bool{false, true} {
			mo0 := OperandObj(true, u.RegValue(1), false, 0, false)
			mo1 := OperandObj(false, 0, false, 0, fi)
			mi := u.InstObj(op, nil, mo0, mo1)
			cs = append(cs, Case{Args: map[string]any{"MI": mi}})
		}
	}
	return cs
}

// fixupKindGrid lists every target fixup value plus core data fixups and
// an invalid probe.
func fixupKindGrid(u *Universe) []int64 {
	var out []int64
	for i := range u.T.Fixups() {
		out = append(out, u.FixupValue(i))
	}
	out = append(out, 3, 4, 999) // FK_Data_4, FK_Data_8, invalid
	return out
}

func lowerName(t *corpus.TargetSpec) string {
	b := []byte(t.Name)
	for i := range b {
		if b[i] >= 'A' && b[i] <= 'Z' {
			b[i] += 32
		}
	}
	return string(b)
}
