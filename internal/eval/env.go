// Package eval is VEGA's regression-test harness: the offline stand-in
// for running LLVM's regression suites against a compiler whose functions
// were substituted one at a time (the paper's pass@1). Each interface
// function has an input grid; the generated implementation and the
// reference run side by side in the interpreter and must agree on every
// observable outcome (return value, emitted effects, aborts).
package eval

import (
	"fmt"
	"strconv"
	"strings"

	"vega/internal/corpus"
	"vega/internal/cpp"
	"vega/internal/interp"
)

// regBase offsets register enum values so they collide with nothing else.
const regBase = 1000

// FirstTargetFixupKind mirrors llvm/MC/MCFixup.h.
const firstTargetFixupKind = 128

// Universe is the symbol and stub environment of one target, shared by
// every regression case.
type Universe struct {
	T       *corpus.TargetSpec
	Backend *corpus.Backend
	// effects collects observable side effects during one case run.
	effects []string
}

// NewUniverse builds the universe for a target's backend.
func NewUniverse(b *corpus.Backend) *Universe {
	return &Universe{T: b.Target, Backend: b}
}

// FixupValue returns the enum value of the i-th target fixup.
func (u *Universe) FixupValue(i int) int64 { return int64(firstTargetFixupKind + i) }

// RegValue returns the enum value of register i.
func (u *Universe) RegValue(i int) int64 { return int64(regBase + i) }

// Effect records an observable side effect.
func (u *Universe) Effect(format string, args ...any) {
	u.effects = append(u.effects, fmt.Sprintf(format, args...))
}

// ResetEffects clears collected effects before a case run.
func (u *Universe) ResetEffects() { u.effects = nil }

// Effects returns a copy of the collected effects.
func (u *Universe) Effects() []string {
	return append([]string{}, u.effects...)
}

// Env builds a fresh interpreter environment bound to this universe.
// optLevel parametrizes the ambient MachineFunction stub.
func (u *Universe) Env(optLevel int64) *interp.Env {
	env := interp.NewEnv()
	t := u.T

	// Core enums.
	for name, v := range map[string]int64{
		"FK_NONE": 0, "FK_Data_1": 1, "FK_Data_2": 2, "FK_Data_4": 3, "FK_Data_8": 4,
		"FirstTargetFixupKind": firstTargetFixupKind,
		"Fail":                 0, "SoftFail": 1, "Success": 3,
		"Match_Success": 0, "Match_InvalidOperand": 1, "Match_MnemonicFail": 2, "Match_MissingFeature": 3,
		"NoRegister": 4095,
		"SETEQ":      0, "SETNE": 1, "SETLT": 2, "SETGT": 3,
		"VK_None": 0, "VK_PLT": 1, "VK_GOT": 2,
	} {
		env.Globals[name] = v
	}
	for name, v := range map[string]int64{"i8": 8, "i16": 16, "i32": 32, "i64": 64} {
		env.Qualified["MVT::"+name] = v
		env.Globals[name] = v
	}

	// Feature bits: hasFeature(name-token) checks the target's spec.
	features := map[string]bool{
		"HasVariantKind":      t.HasVariantKind,
		"HasHardwareLoop":     t.HasHardwareLoop,
		"HasSIMD":             t.HasSIMD,
		"HasRealtimeISA":      t.HasRealtime,
		"HasDelaySlots":       t.HasDelaySlots,
		"HasCmpFlags":         t.CmpUsesFlags,
		"IsBigEndian":         t.BigEndian,
		"HasDisassembler":     t.HasDisassembler,
		"HasFramePointer":     t.FPIndex >= 0,
		"HasReturnAddressReg": t.RAIndex >= 0,
		"HasVLIWBundles":      t.HasVLIWBundles,
		"HasPredication":      t.HasPredication,
		"HasTensorOps":        t.HasTensorOps,
	}
	for _, e := range t.Extensions {
		features["HasStdExt"+strings.ToUpper(e)] = true
	}
	for name := range features {
		env.Globals[name] = name
	}
	sti := interp.NewObject("STI").On("hasFeature", func(args []any) (any, error) {
		name, _ := args[0].(string)
		return features[name], nil
	})
	env.Globals["STI"] = sti

	// Ambient MachineFunction.
	mf := interp.NewObject("MF").
		Const("getOptLevel", optLevel).
		Const("hasFP", true).
		Const("getStackSize", int64(0)).
		Const("hasVarSizedObjects", false)
	env.Globals["MF"] = mf

	// Target symbols: fixups, relocations, registers, instructions,
	// variant kinds.
	for i, f := range t.Fixups() {
		env.Qualified[t.Name+"::"+f.Name] = u.FixupValue(i)
		env.Qualified["ELF::"+f.Reloc] = int64(i + 1)
	}
	env.Qualified["ELF::R_"+strings.ToUpper(t.Name)+"_NONE"] = int64(0)
	for i := 0; i < t.NumRegs; i++ {
		env.Qualified[t.Name+"::"+t.RegEnum(i)] = u.RegValue(i)
	}
	for _, inst := range t.InstSet {
		env.Qualified[t.Name+"::"+inst.Enum] = int64(inst.Opcode)
	}
	if t.HasVariantKind {
		up := strings.ToUpper(t.Name)
		env.Qualified[t.Name+"::VK_"+up+"_None"] = 0
		env.Qualified[t.Name+"::VK_"+up+"_HI"] = 1
		env.Qualified[t.Name+"::VK_"+up+"_LO"] = 2
	}

	// Builtins shared by reference implementations.
	env.Funcs["signExtend"] = func(args []any) (any, error) {
		v, _ := asInt(args, 0)
		bits, _ := asInt(args, 1)
		if bits <= 0 || bits >= 64 {
			return v, nil
		}
		shift := 64 - uint(bits)
		return (v << shift) >> shift, nil
	}
	env.Funcs["parseRegisterIndex"] = func(args []any) (any, error) {
		name, _ := args[0].(string)
		prefix, _ := args[1].(string)
		if !strings.HasPrefix(name, prefix) {
			return int64(-1), nil
		}
		n, err := strconv.Atoi(name[len(prefix):])
		if err != nil || n < 0 {
			return int64(-1), nil
		}
		return int64(n), nil
	}
	env.Funcs["formatRegister"] = func(args []any) (any, error) {
		prefix, _ := args[0].(string)
		idx, _ := asInt(args, 1)
		return fmt.Sprintf("%s%d", prefix, idx), nil
	}
	env.Funcs["formatRegisterSym"] = func(args []any) (any, error) {
		sym, _ := args[0].(string)
		prefix, _ := args[1].(string)
		idx, _ := asInt(args, 2)
		return fmt.Sprintf("%s%s%d", sym, prefix, idx), nil
	}
	env.Funcs["getBinaryCodeForInstr"] = func(args []any) (any, error) {
		if mi, ok := args[0].(*interp.Object); ok {
			if v, ok := mi.Fields["bits"]; ok {
				return v, nil
			}
		}
		return int64(0), nil
	}

	// Sibling backend functions (the base compiler's correct parts):
	// generated or reference code may call e.g. adjustFixupValue.
	for name, fn := range u.Backend.Funcs {
		name, fn := name, fn
		env.Funcs[name] = func(args []any) (any, error) {
			return interp.Call(fn, env, bindArgs(fn, args))
		}
	}
	return env
}

// bindArgs maps positional arguments to a function's parameter names.
func bindArgs(fn *cpp.Node, args []any) map[string]any {
	out := make(map[string]any)
	params := fn.Children[1]
	for i, p := range params.Children {
		if i < len(args) && p.Value != "" {
			out[p.Value] = args[i]
		}
	}
	return out
}

func asInt(args []any, i int) (int64, bool) {
	if i >= len(args) {
		return 0, false
	}
	switch v := args[i].(type) {
	case int64:
		return v, true
	case int:
		return int64(v), true
	case bool:
		if v {
			return 1, true
		}
		return 0, true
	}
	return 0, false
}

// --- stub object builders ---

// FixupObj builds an MCFixup stub with the given kind and offset.
func FixupObj(kind, offset int64) *interp.Object {
	return interp.NewObject("MCFixup").
		Const("getTargetKind", kind).
		Const("getKind", kind).
		Const("getOffset", offset)
}

// ValueTargetObj builds an MCValue stub.
func ValueTargetObj(variant int64, absolute bool) *interp.Object {
	return interp.NewObject("MCValue").
		Const("getAccessVariant", variant).
		Const("isAbsolute", absolute)
}

// OperandObj builds an MCOperand stub.
func OperandObj(isReg bool, reg int64, isImm bool, imm int64, isFI bool) *interp.Object {
	return interp.NewObject("MCOperand").
		Const("isReg", isReg).Const("getReg", reg).
		Const("isImm", isImm).Const("getImm", imm).
		Const("isFI", isFI)
}

// InstObj builds an MCInst/MachineInstr stub whose addReg/addImm/setOpcode
// record effects into the universe.
func (u *Universe) InstObj(opcode int64, flags map[string]bool, operands ...*interp.Object) *interp.Object {
	mi := interp.NewObject("MCInst").
		Const("getOpcode", opcode).
		Const("getNumOperands", int64(len(operands)))
	for _, name := range []string{"mayStore", "mayLoad", "isVector", "isBranch", "isTerminator", "isLabel", "isCall"} {
		mi.Const(name, flags[name])
	}
	mi.On("getOperand", func(args []any) (any, error) {
		i, _ := asInt(args, 0)
		if int(i) < len(operands) {
			return operands[i], nil
		}
		return nil, interp.RuntimeError{Msg: "operand index out of range"}
	})
	mi.On("addReg", func(args []any) (any, error) {
		v, _ := asInt(args, 0)
		u.Effect("addReg(%d)", v)
		return nil, nil
	})
	mi.On("addImm", func(args []any) (any, error) {
		v, _ := asInt(args, 0)
		u.Effect("addImm(%d)", v)
		return nil, nil
	})
	mi.On("setOpcode", func(args []any) (any, error) {
		v, _ := asInt(args, 0)
		u.Effect("setOpcode(%d)", v)
		return nil, nil
	})
	return mi
}

// StreamObj builds a raw_ostream stub recording writes and prints.
func (u *Universe) StreamObj() *interp.Object {
	os := interp.NewObject("raw_ostream")
	os.On("write", func(args []any) (any, error) {
		v, _ := asInt(args, 0)
		u.Effect("write(%d)", v)
		return os, nil
	})
	os.On("print", func(args []any) (any, error) {
		u.Effect("print(%v)", args[0])
		return os, nil
	})
	os.On("printInt", func(args []any) (any, error) {
		v, _ := asInt(args, 0)
		u.Effect("printInt(%d)", v)
		return os, nil
	})
	return os
}

// DataObj builds a MutableArrayRef stub recording byte stores.
func (u *Universe) DataObj() *interp.Object {
	d := interp.NewObject("MutableArrayRef")
	d.On("set", func(args []any) (any, error) {
		i, _ := asInt(args, 0)
		v, _ := asInt(args, 1)
		u.Effect("data[%d]=%d", i, v)
		return nil, nil
	})
	return d
}

// RegListObj builds a register-list stub recording push_back.
func (u *Universe) RegListObj() *interp.Object {
	r := interp.NewObject("RegList")
	r.On("push_back", func(args []any) (any, error) {
		v, _ := asInt(args, 0)
		u.Effect("push(%d)", v)
		return nil, nil
	})
	return r
}

// MFObj builds a MachineFunction stub with explicit knobs.
func MFObj(hasFP bool, stackSize int64, varSized bool, optLevel int64) *interp.Object {
	return interp.NewObject("MF").
		Const("hasFP", hasFP).
		Const("getStackSize", stackSize).
		Const("hasVarSizedObjects", varSized).
		Const("getOptLevel", optLevel)
}
