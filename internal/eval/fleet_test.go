package eval

import (
	"testing"

	"vega/internal/compiler"
	"vega/internal/corpus"
)

// TestExtendedFleetScale checks the corpus-scale acceptance bar: 50+
// targets spanning the four new ISA archetypes.
func TestExtendedFleetScale(t *testing.T) {
	fleet, err := corpus.Fleet("extended")
	if err != nil {
		t.Fatal(err)
	}
	if len(fleet) < 50 {
		t.Fatalf("extended fleet has %d targets, want >= 50", len(fleet))
	}
	seen := map[string]bool{}
	arch := map[string]int{}
	for _, spec := range fleet {
		if seen[spec.Name] {
			t.Errorf("duplicate target name %s", spec.Name)
		}
		seen[spec.Name] = true
		if spec.HasVLIWBundles {
			arch["vliw"]++
		}
		if spec.HasPredication {
			arch["predicated"]++
		}
		if spec.HasTensorOps {
			arch["tensor"]++
		}
		if len(spec.Extensions) > 0 {
			arch["rvext"]++
		}
	}
	if len(arch) < 4 {
		t.Fatalf("extended fleet covers %d archetypes (%v), want 4", len(arch), arch)
	}
	for name, n := range arch {
		if n < 5 {
			t.Errorf("archetype %s has only %d members", name, n)
		}
	}
	// The standard fleet prefix must be untouched by the scale-out.
	std := corpus.Targets()
	for i, spec := range std {
		if fleet[i].Name != spec.Name {
			t.Fatalf("extended fleet reordered standard target %d: %s != %s", i, fleet[i].Name, spec.Name)
		}
	}
}

// TestFamilyTargetsPassHarness drives every synthesized family member
// through the full existing harness path: render + parse its reference
// backend, self-evaluate it perfectly against the regression suites, and
// materialize its compiler tables.
func TestFamilyTargetsPassHarness(t *testing.T) {
	for _, spec := range corpus.FamilyTargets() {
		ref, err := corpus.BuildBackend(spec)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		if len(ref.Funcs) == 0 {
			t.Fatalf("%s: empty backend", spec.Name)
		}
		be := EvaluateBackend(selfBackend(ref), ref, nil)
		tot := be.Totals()
		if tot.Accurate != tot.Funcs {
			t.Errorf("%s: self-eval %d/%d", spec.Name, tot.Accurate, tot.Funcs)
			for _, r := range be.Results {
				if !r.Accurate {
					t.Logf("  inaccurate: %s (parsed=%v)", r.Name, r.Parsed)
				}
			}
		}
		if tb := compiler.TablesFromSpec(spec); tb == nil || tb.NumRegs != spec.NumRegs {
			t.Errorf("%s: tables from spec failed", spec.Name)
		}
	}
}
