package eval

import (
	"testing"

	"vega/internal/corpus"
	"vega/internal/cpp"
	"vega/internal/forkflow"
	"vega/internal/generate"
)

func buildCorpus(t *testing.T) *corpus.Corpus {
	t.Helper()
	c, err := corpus.Build()
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// selfBackend wraps a reference backend as if VEGA had generated it
// perfectly.
func selfBackend(b *corpus.Backend) *generate.Backend {
	out := &generate.Backend{Target: b.Target.Name, Seconds: map[string]float64{}}
	for _, ifn := range corpus.AllFuncs() {
		fn, ok := b.Funcs[ifn.Name]
		if !ok {
			continue
		}
		gf := &generate.Function{Name: ifn.Name, Module: string(ifn.Module), Target: b.Target.Name}
		for i, st := range cpp.SplitFunction(fn) {
			gf.Statements = append(gf.Statements, generate.Statement{Row: i, Text: st.Text, Score: 1})
		}
		out.Functions = append(out.Functions, gf)
	}
	return out
}

func TestSelfEvaluationIsPerfect(t *testing.T) {
	c := buildCorpus(t)
	for _, ref := range c.EvalBackends() {
		be := EvaluateBackend(selfBackend(ref), ref, nil)
		tot := be.Totals()
		if tot.Accurate != tot.Funcs {
			t.Errorf("%s: self-eval %d/%d", ref.Target.Name, tot.Accurate, tot.Funcs)
			for _, r := range be.Results {
				if !r.Accurate {
					t.Logf("  inaccurate: %s (parsed=%v)", r.Name, r.Parsed)
				}
			}
		}
		if tot.AccurateStatements != tot.RefStatements || tot.ManualEffort != 0 {
			t.Errorf("%s: self statement accuracy %d/%d manual=%d",
				ref.Target.Name, tot.AccurateStatements, tot.RefStatements, tot.ManualEffort)
		}
	}
}

func TestEverySuiteCoversEveryFunction(t *testing.T) {
	names := map[string]bool{}
	for _, n := range SuiteNames() {
		names[n] = true
	}
	for _, f := range corpus.AllFuncs() {
		if !names[f.Name] {
			t.Errorf("no regression suite for %s", f.Name)
		}
	}
}

func TestForkFlowAccuracyIsLow(t *testing.T) {
	c := buildCorpus(t)
	for _, ref := range c.EvalBackends() {
		ff := forkflow.Fork(c, forkflow.DefaultDonor, ref.Target.Name)
		be := EvaluateBackend(ff, ref, nil)
		tot := be.Totals()
		acc := tot.FunctionAccuracy()
		if acc > 0.25 {
			t.Errorf("%s: fork-flow accuracy %.1f%% — too high, the corpus has lost its divergence", ref.Target.Name, 100*acc)
		}
		if tot.Accurate == 0 {
			t.Errorf("%s: fork-flow at zero — suspiciously broken fork", ref.Target.Name)
		}
	}
}

func TestMutatedFunctionFailsPass1(t *testing.T) {
	c := buildCorpus(t)
	ref := c.Backends["RISCV"]
	gen := selfBackend(ref)
	// Corrupt one statement of getRelocType: swap a relocation value.
	f := gen.Function("getRelocType")
	for i, s := range f.Statements {
		if s.Text == "return ELF::R_RISCV_HI20;" {
			f.Statements[i].Text = "return ELF::R_RISCV_LO12;"
		}
	}
	be := EvaluateBackend(gen, ref, nil)
	for _, r := range be.Results {
		if r.Name == "getRelocType" {
			if r.Accurate {
				t.Error("mutated getRelocType must fail pass@1")
			}
			if !r.ErrV {
				t.Error("value mutation should classify as Err-V")
			}
		} else if !r.Accurate {
			t.Errorf("unrelated function %s failed", r.Name)
		}
	}
}

func TestDroppedStatementClassifiesErrDef(t *testing.T) {
	c := buildCorpus(t)
	ref := c.Backends["RISCV"]
	gen := selfBackend(ref)
	f := gen.Function("matchRegisterName")
	// Remove a whole if-block: statements 1..3 (the sp special case).
	var kept []generate.Statement
	skip := 0
	for _, s := range f.Statements {
		if s.Text == `if (Name == "sp") {` && skip == 0 {
			skip = 3
		}
		if skip > 0 {
			skip--
			continue
		}
		kept = append(kept, s)
	}
	f.Statements = kept
	be := EvaluateBackend(gen, ref, nil)
	for _, r := range be.Results {
		if r.Name != "matchRegisterName" {
			continue
		}
		if r.Accurate {
			t.Error("deficient function must fail pass@1")
		}
		if !r.ErrDef {
			t.Error("missing statements should classify as Err-Def")
		}
		if r.ManualEffort == 0 {
			t.Error("manual effort must be positive")
		}
	}
}

func TestLowConfidenceDropsStatement(t *testing.T) {
	c := buildCorpus(t)
	ref := c.Backends["RISCV"]
	gen := selfBackend(ref)
	f := gen.Function("getStackAlignment")
	f.Statements[1].Score = 0.2 // the return statement
	be := EvaluateBackend(gen, ref, nil)
	for _, r := range be.Results {
		if r.Name == "getStackAlignment" {
			if r.Accurate {
				t.Error("function with dropped body must fail")
			}
			if !r.ErrCS {
				t.Error("correct-but-dropped statement should classify as Err-CS")
			}
		}
	}
}

func TestOutcomeEquality(t *testing.T) {
	a := Outcome{Ret: "1", Effects: []string{"x"}}
	if !a.Equal(Outcome{Ret: "1", Effects: []string{"x"}}) {
		t.Error("equal outcomes compare unequal")
	}
	if a.Equal(Outcome{Ret: "2", Effects: []string{"x"}}) {
		t.Error("different returns compare equal")
	}
	if a.Equal(Outcome{Ret: "1", Effects: []string{"y"}}) {
		t.Error("different effects compare equal")
	}
	if a.Equal(Outcome{Ret: "1", Effects: []string{"x"}, Fatal: true}) {
		t.Error("fatal flag ignored")
	}
}

func TestEffortModelCalibration(t *testing.T) {
	mods := []ModuleStats{{Module: "SEL", ManualEffort: 7223}}
	hours := DeveloperA.Hours(mods)
	if h := hours["SEL"]; h < 42 || h > 43 {
		t.Errorf("calibration off: %f hours for the paper's RISC-V workload", h)
	}
	if DeveloperB.TotalHours(mods) <= DeveloperA.TotalHours(mods) {
		t.Error("developer B should be slower than A")
	}
}

func TestModuleAggregation(t *testing.T) {
	c := buildCorpus(t)
	ref := c.Backends["XCore"]
	be := EvaluateBackend(selfBackend(ref), ref, nil)
	mods := be.ByModule()
	for _, m := range mods {
		if m.Module == "DIS" {
			t.Error("XCore must not report a DIS module")
		}
	}
	if len(mods) != 6 {
		t.Errorf("XCore modules = %d, want 6", len(mods))
	}
	if be.ModuleAverageAccuracy() != 1 {
		t.Errorf("self module-average = %f", be.ModuleAverageAccuracy())
	}
}
