package eval

import (
	"errors"
	"fmt"
	"strings"

	"vega/internal/cpp"
	"vega/internal/generate"
	"vega/internal/gumtree"
	"vega/internal/interp"
	"vega/internal/template"
)

// Outcome is the observable result of one regression case.
type Outcome struct {
	Ret     string
	Effects []string
	Fatal   bool
	Err     bool // runtime error: the code did something inexplicable
}

// Equal compares outcomes.
func (o Outcome) Equal(p Outcome) bool {
	if o.Fatal != p.Fatal || o.Err != p.Err || o.Ret != p.Ret || len(o.Effects) != len(p.Effects) {
		return false
	}
	for i := range o.Effects {
		if o.Effects[i] != p.Effects[i] {
			return false
		}
	}
	return true
}

// RunCase executes fn under one case and captures the outcome.
func (u *Universe) RunCase(fn *cpp.Node, c Case) Outcome {
	u.ResetEffects()
	env := u.Env(0)
	for k, v := range c.Globals {
		env.Globals[k] = v
	}
	env.MaxSteps = 200_000
	ret, err := interp.Call(fn, env, c.Args)
	out := Outcome{Effects: u.Effects()}
	switch {
	case err == nil:
		out.Ret = fmt.Sprintf("%v", ret)
	default:
		var fatal interp.Fatal
		if errors.As(err, &fatal) {
			out.Fatal = true
		} else {
			out.Err = true
		}
	}
	return out
}

// FunctionPasses runs the full suite for an interface function over both
// implementations and reports pass@1 agreement. Functions without a suite
// fall back to textual equivalence.
func (u *Universe) FunctionPasses(name string, gen, ref *cpp.Node) bool {
	cases := Suite(name, u)
	if len(cases) == 0 {
		return canonicalFunc(gen) == canonicalFunc(ref)
	}
	for _, c := range cases {
		got := u.RunCase(gen, c)
		if got.Err {
			return false
		}
		want := u.RunCase(ref, c)
		if !got.Equal(want) {
			return false
		}
	}
	return true
}

func canonicalFunc(fn *cpp.Node) string {
	if fn == nil {
		return ""
	}
	return strings.Join(cpp.StatementTexts(cpp.SplitFunction(fn)), "\n")
}

// FuncResult is the evaluation of one generated function.
type FuncResult struct {
	Name    string
	Module  string
	Target  string
	Emitted bool // VEGA produced the function (definition kept)
	// RefExists reports whether the base compiler implements it.
	RefExists bool
	// Accurate is the pass@1 verdict.
	Accurate bool
	// Parsed reports whether the rendered function reparses.
	Parsed bool
	// Confidence is the function-level score (first statement's).
	Confidence float64
	// MultiSource marks accurate functions whose statements draw on more
	// than one training target (Fig. 8's purple share).
	MultiSource bool
	// Verified carries the verify-and-repair status when Config.Verify
	// was on during generation (VerifyNone otherwise).
	Verified generate.VerifyStatus
	// RepairRounds counts the CEGAR rounds the repair loop ran for this
	// function.
	RepairRounds int

	// Statement-level accounting (Fig. 9 / Table 3).
	RefStatements      int
	AccurateStatements int
	ManualEffort       int

	// Error taxonomy (Table 2).
	ErrV, ErrCS, ErrDef bool
}

// EvaluateFunction scores one generated function against the reference.
// ft gives access to the training targets' statements for multi-source
// attribution (may be nil).
func (u *Universe) EvaluateFunction(f *generate.Function, ref *cpp.Node, ft *template.FunctionTemplate) FuncResult {
	res := FuncResult{
		Name: f.Name, Module: f.Module, Target: f.Target,
		Emitted:    f.Generated(),
		RefExists:  ref != nil,
		Confidence: f.Confidence(),
	}
	if f.Verify != nil {
		res.Verified = f.Verify.Status
		res.RepairRounds = f.Verify.Rounds
	}

	var refTexts []string
	if ref != nil {
		refTexts = canonicalStatements(ref)
		res.RefStatements = len(refTexts)
	}

	if !res.Emitted {
		// Correct omission when the base compiler also lacks it.
		res.Accurate = !res.RefExists
		if res.RefExists {
			res.ErrDef = true
			res.ManualEffort = res.RefStatements
		}
		return res
	}
	if !res.RefExists {
		// Hallucinated function: everything it contains is manual effort
		// to delete; statement counts stay at zero.
		res.ErrDef = true
		return res
	}

	genFn, err := f.Parse()
	if err == nil {
		res.Parsed = true
		cpp.Normalize(genFn)
		res.Accurate = u.FunctionPasses(f.Name, genFn, ref)
	}

	// Statement-level alignment for Fig. 9 / Table 3 and the taxonomy.
	genTexts := keptTexts(f)
	res.AccurateStatements, res.ManualEffort = statementAccuracy(genTexts, refTexts)
	if res.Accurate {
		// The paper counts every statement of an accurate function as
		// accurate.
		res.AccurateStatements = res.RefStatements
		res.ManualEffort = 0
	}

	res.ErrV, res.ErrCS, res.ErrDef = classifyErrors(f, genTexts, refTexts, res.Accurate)
	if ft != nil && res.Accurate {
		res.MultiSource = multiSource(f, ft)
	}
	return res
}

// canonicalStatements renders a function's statements in canonical token
// form (the comparison space used throughout evaluation).
func canonicalStatements(fn *cpp.Node) []string {
	var out []string
	for _, s := range cpp.SplitFunction(fn) {
		toks, err := cpp.Lex(s.Text)
		if err != nil {
			out = append(out, s.Text)
			continue
		}
		out = append(out, template.JoinTokens(cpp.TokenTexts(toks)))
	}
	return out
}

// keptTexts collects the canonical texts of the statements VEGA kept.
func keptTexts(f *generate.Function) []string {
	var out []string
	for _, s := range f.Statements {
		if !s.Kept() {
			continue
		}
		toks, err := cpp.Lex(s.Text)
		if err != nil {
			out = append(out, s.Text)
			continue
		}
		out = append(out, template.JoinTokens(cpp.TokenTexts(toks)))
	}
	return out
}

// statementAccuracy aligns generated against reference statements and
// counts exact matches; the rest of the reference is manual effort.
func statementAccuracy(gen, ref []string) (accurate, manual int) {
	tg := tokenize(gen)
	tr := tokenize(ref)
	pairs := gumtree.AlignTokenized(tg, tr, gumtree.AlignOptions{MinSim: 0.3})
	matched := 0
	for _, p := range pairs {
		if p.A >= 0 && p.B >= 0 && gen[p.A] == ref[p.B] {
			matched++
		}
	}
	return matched, len(ref) - matched
}

func tokenize(lines []string) [][]string {
	out := make([][]string, len(lines))
	for i, l := range lines {
		toks, err := cpp.Lex(l)
		if err != nil {
			out[i] = []string{l}
			continue
		}
		out[i] = cpp.TokenTexts(toks)
	}
	return out
}

// classifyErrors derives the paper's three error types for an inaccurate
// function: wrong target-specific values (Err-V), contradicting confidence
// scores (Err-CS), and deficient statements (Err-Def).
func classifyErrors(f *generate.Function, gen, ref []string, accurate bool) (errV, errCS, errDef bool) {
	if accurate {
		return false, false, false
	}
	tg := tokenize(gen)
	tr := tokenize(ref)
	pairs := gumtree.AlignTokenized(tg, tr, gumtree.AlignOptions{MinSim: 0.3})
	matchedRef := map[int]bool{}
	for _, p := range pairs {
		if p.A < 0 || p.B < 0 {
			continue
		}
		matchedRef[p.B] = true
		if gen[p.A] == ref[p.B] {
			continue
		}
		// Same shape, different tokens => wrong value.
		if len(tg[p.A]) == len(tr[p.B]) {
			same := 0
			for i := range tg[p.A] {
				if tg[p.A][i] == tr[p.B][i] {
					same++
				}
			}
			if same*3 >= len(tg[p.A])*2 {
				errV = true
				continue
			}
		}
		errDef = true
	}
	for i := range ref {
		if !matchedRef[i] {
			errDef = true
		}
	}
	// Confidence contradictions: a dropped statement whose text matches a
	// reference statement (should have been kept), or a kept statement
	// matching nothing (confidence said correct, it was not).
	refSet := map[string]bool{}
	for _, r := range ref {
		refSet[r] = true
	}
	for _, s := range f.Statements {
		if s.Absent || s.Text == "" {
			continue
		}
		canonical := s.Text
		if toks, err := cpp.Lex(s.Text); err == nil {
			canonical = template.JoinTokens(cpp.TokenTexts(toks))
		}
		inRef := refSet[canonical]
		if s.Kept() && !inRef {
			errCS = true
		}
		if !s.Kept() && inRef {
			errCS = true
		}
	}
	return errV, errCS, errDef
}

// multiSource reports whether the function's kept statements draw on at
// least two distinct training targets where the training targets disagree
// (the paper's "synthesized from the statements of various targets").
func multiSource(f *generate.Function, ft *template.FunctionTemplate) bool {
	sources := map[string]bool{}
	for _, s := range f.Statements {
		if !s.Kept() || s.Row >= len(ft.Rows) {
			continue
		}
		row := ft.Rows[s.Row]
		distinct := map[string]bool{}
		for _, toks := range row.PerTarget {
			distinct[template.JoinTokens(toks)] = true
		}
		if len(distinct) < 2 {
			continue // all training targets agree; no attribution signal
		}
		canonical := s.Text
		if toks, err := cpp.Lex(s.Text); err == nil {
			canonical = template.JoinTokens(cpp.TokenTexts(toks))
		}
		for tgt, toks := range row.PerTarget {
			if template.JoinTokens(toks) == canonical {
				sources[tgt] = true
			}
		}
	}
	return len(sources) >= 2
}
