package eval

import (
	"sort"

	"vega/internal/corpus"
	"vega/internal/generate"
	"vega/internal/template"
)

// BackendEval is the full evaluation of one generated backend.
type BackendEval struct {
	Target  string
	Results []FuncResult
}

// EvaluateBackend scores every generated function of a backend against
// the reference backend. templates maps interface-function names to their
// function templates (for multi-source attribution; may be nil).
func EvaluateBackend(gen *generate.Backend, ref *corpus.Backend, templates map[string]*template.FunctionTemplate) *BackendEval {
	u := NewUniverse(ref)
	be := &BackendEval{Target: gen.Target}
	for _, f := range gen.Functions {
		var ft *template.FunctionTemplate
		if templates != nil {
			ft = templates[f.Name]
		}
		be.Results = append(be.Results, u.EvaluateFunction(f, ref.Funcs[f.Name], ft))
	}
	return be
}

// ModuleStats aggregates results per function module (one bar group of
// Fig. 8 / Fig. 9 / one row of Table 3).
type ModuleStats struct {
	Module string

	Funcs       int // functions the backend should have
	Accurate    int
	HighConf    int // accurate with confidence ≈ 1.00
	MidConf     int // accurate with confidence in [0.5, 0.99]
	MultiSource int

	RefStatements      int
	AccurateStatements int
	ManualEffort       int

	ErrV, ErrCS, ErrDef int
}

// FunctionAccuracy is the module's pass@1 rate.
func (m ModuleStats) FunctionAccuracy() float64 {
	if m.Funcs == 0 {
		return 0
	}
	return float64(m.Accurate) / float64(m.Funcs)
}

// StatementAccuracy is the module's statement-level accuracy.
func (m ModuleStats) StatementAccuracy() float64 {
	if m.RefStatements == 0 {
		return 0
	}
	return float64(m.AccurateStatements) / float64(m.RefStatements)
}

// ByModule aggregates the evaluation per module, in the paper's module
// order; modules absent from the backend (DIS for XCore) are skipped.
func (be *BackendEval) ByModule() []ModuleStats {
	acc := map[string]*ModuleStats{}
	for _, r := range be.Results {
		if !r.RefExists && !r.Emitted {
			continue // correctly omitted function: not part of the backend
		}
		m := acc[r.Module]
		if m == nil {
			m = &ModuleStats{Module: r.Module}
			acc[r.Module] = m
		}
		m.Funcs++
		if r.Accurate {
			m.Accurate++
			if r.Confidence > 0.99 {
				m.HighConf++
			} else if r.Confidence >= 0.5 {
				m.MidConf++
			}
			if r.MultiSource {
				m.MultiSource++
			}
		}
		m.RefStatements += r.RefStatements
		m.AccurateStatements += r.AccurateStatements
		m.ManualEffort += r.ManualEffort
		if r.ErrV {
			m.ErrV++
		}
		if r.ErrCS {
			m.ErrCS++
		}
		if r.ErrDef {
			m.ErrDef++
		}
	}
	var out []ModuleStats
	for _, mod := range corpus.Modules {
		if m, ok := acc[string(mod)]; ok {
			out = append(out, *m)
		}
	}
	return out
}

// Totals aggregates across all modules.
func (be *BackendEval) Totals() ModuleStats {
	t := ModuleStats{Module: "ALL"}
	for _, m := range be.ByModule() {
		t.Funcs += m.Funcs
		t.Accurate += m.Accurate
		t.HighConf += m.HighConf
		t.MidConf += m.MidConf
		t.MultiSource += m.MultiSource
		t.RefStatements += m.RefStatements
		t.AccurateStatements += m.AccurateStatements
		t.ManualEffort += m.ManualEffort
		t.ErrV += m.ErrV
		t.ErrCS += m.ErrCS
		t.ErrDef += m.ErrDef
	}
	return t
}

// RepairStats aggregates the verify-and-repair outcomes of a backend
// evaluation (the verified pass@1 / pass@k / repair-rate table that sits
// beside the paper's accuracy figures).
type RepairStats struct {
	// Attempted counts functions that were actually executed against
	// ground truth (statuses passed/repaired/failed).
	Attempted int
	// PassedFirst counts functions that passed verification as generated
	// — plain pass@1 restricted to the verified set.
	PassedFirst int
	// Repaired counts functions recovered by counterexample-guided
	// repair; Failed counts functions whose repair rounds were exhausted.
	Repaired, Failed int
	// NoOracle counts functions with no ground truth to execute against.
	NoOracle int
	// Rounds sums CEGAR rounds across non-passing functions.
	Rounds int
}

// PlainPass1 is the fraction of verified functions that passed as
// generated (what pass@1 would have been without repair).
func (r RepairStats) PlainPass1() float64 {
	if r.Attempted == 0 {
		return 0
	}
	return float64(r.PassedFirst) / float64(r.Attempted)
}

// VerifiedPass1 is the fraction of verified functions whose final
// artifact passes — passed-first plus repaired. Repair never replaces a
// function with a non-passing variant, so VerifiedPass1 >= PlainPass1 by
// construction.
func (r RepairStats) VerifiedPass1() float64 {
	if r.Attempted == 0 {
		return 0
	}
	return float64(r.PassedFirst+r.Repaired) / float64(r.Attempted)
}

// RepairRate is the share of initially diverging functions the repair
// loop recovered.
func (r RepairStats) RepairRate() float64 {
	if r.Repaired+r.Failed == 0 {
		return 0
	}
	return float64(r.Repaired) / float64(r.Repaired+r.Failed)
}

// Repair aggregates verify-and-repair outcomes across the evaluation
// (all zeros when generation ran without Config.Verify).
func (be *BackendEval) Repair() RepairStats {
	var r RepairStats
	for _, res := range be.Results {
		switch res.Verified {
		case generate.VerifyPassed:
			r.Attempted++
			r.PassedFirst++
		case generate.VerifyRepaired:
			r.Attempted++
			r.Repaired++
		case generate.VerifyFailed:
			r.Attempted++
			r.Failed++
		case generate.VerifyNoOracle:
			r.NoOracle++
		}
		r.Rounds += res.RepairRounds
	}
	return r
}

// ModuleAverageAccuracy is the mean of per-module accuracies — the
// "average across the seven function modules" the paper reports alongside
// the all-functions rate.
func (be *BackendEval) ModuleAverageAccuracy() float64 {
	mods := be.ByModule()
	if len(mods) == 0 {
		return 0
	}
	sum := 0.0
	for _, m := range mods {
		sum += m.FunctionAccuracy()
	}
	return sum / float64(len(mods))
}

// ErrorShare returns the fraction of all functions exhibiting each error
// type (Table 2's percentages).
func (be *BackendEval) ErrorShare() (errV, errCS, errDef float64) {
	t := be.Totals()
	if t.Funcs == 0 {
		return 0, 0, 0
	}
	n := float64(t.Funcs)
	return float64(t.ErrV) / n, float64(t.ErrCS) / n, float64(t.ErrDef) / n
}

// EffortModel converts manual-effort statement counts into developer
// hours (Table 4). The per-statement rate is calibrated from the paper:
// RISC-V's 7,223 manual statements took developer A 42.54 hours.
type EffortModel struct {
	HoursPerStatement float64
	DeveloperFactor   float64 // B took ~13% longer than A
}

// DeveloperA and DeveloperB mirror the paper's two reviewers.
var (
	DeveloperA = EffortModel{HoursPerStatement: 42.54 / 7223, DeveloperFactor: 1.0}
	DeveloperB = EffortModel{HoursPerStatement: 42.54 / 7223, DeveloperFactor: 48.12 / 42.54}
)

// Hours estimates correction time per module.
func (e EffortModel) Hours(mods []ModuleStats) map[string]float64 {
	out := make(map[string]float64, len(mods))
	for _, m := range mods {
		out[m.Module] = float64(m.ManualEffort) * e.HoursPerStatement * e.DeveloperFactor
	}
	return out
}

// TotalHours sums the per-module estimate.
func (e EffortModel) TotalHours(mods []ModuleStats) float64 {
	total := 0.0
	for _, h := range e.Hours(mods) {
		total += h
	}
	return total
}

// SortedFunctionNames lists evaluated function names sorted (helper for
// stable reports).
func (be *BackendEval) SortedFunctionNames() []string {
	var out []string
	for _, r := range be.Results {
		out = append(out, r.Name)
	}
	sort.Strings(out)
	return out
}
