package repair

import (
	"context"
	"strings"
	"sync"
	"testing"

	"vega/internal/corpus"
	"vega/internal/cpp"
	"vega/internal/eval"
	"vega/internal/generate"
	"vega/internal/obs"
)

// ---- fixture --------------------------------------------------------------

var (
	fixOnce sync.Once
	fixC    *corpus.Corpus
	fixErr  error
)

func buildCorpus(t *testing.T) *corpus.Corpus {
	t.Helper()
	fixOnce.Do(func() { fixC, fixErr = corpus.Build() })
	if fixErr != nil {
		t.Fatal(fixErr)
	}
	return fixC
}

func refBackend(t *testing.T, target string) *corpus.Backend {
	t.Helper()
	b := buildCorpus(t).Backends[target]
	if b == nil {
		t.Fatalf("no backend for %s", target)
	}
	return b
}

// selfFunction rebuilds a generated function from the reference itself —
// a perfect generation, like eval's self-evaluation fixture.
func selfFunction(t *testing.T, b *corpus.Backend, name string) *generate.Function {
	t.Helper()
	ref := b.Funcs[name]
	if ref == nil {
		t.Fatalf("%s: no reference %s", b.Target.Name, name)
	}
	fn := &generate.Function{Name: name, Module: moduleOf(name), Target: b.Target.Name}
	for i, st := range cpp.SplitFunction(ref) {
		fn.Statements = append(fn.Statements, generate.Statement{Row: i, Text: st.Text, Score: 1})
	}
	return fn
}

func moduleOf(name string) string {
	for _, f := range corpus.AllFuncs() {
		if f.Name == name {
			return string(f.Module)
		}
	}
	return ""
}

// corrupt replaces the first statement containing marker with text,
// returning the corrupted row and the original text.
func corrupt(t *testing.T, fn *generate.Function, marker, text string) (row int, orig string) {
	t.Helper()
	for i := range fn.Statements {
		if strings.Contains(fn.Statements[i].Text, marker) {
			orig = fn.Statements[i].Text
			fn.Statements[i].Text = text
			return fn.Statements[i].Row, orig
		}
	}
	t.Fatalf("%s: no statement contains %q", fn.Name, marker)
	return 0, ""
}

// stubDecoder returns canned candidates per row and records calls.
type stubDecoder struct {
	cands map[int][]generate.Statement
	calls int
	panic bool
}

func (d *stubDecoder) Candidates(fnName string, row int, banned []string, forcePresent bool) []generate.Statement {
	d.calls++
	if d.panic {
		panic("stub decoder explosion")
	}
	return d.cands[row]
}

// ---- oracle ---------------------------------------------------------------

func TestOracleSelfVerifyPasses(t *testing.T) {
	b := refBackend(t, "RISCV")
	for _, name := range []string{"isLegalICmpImmediate", "getUncondBranchOpcode", "getRelocType"} {
		v := (&Oracle{Ref: b}).Verify(selfFunction(t, b, name))
		if v.NoOracle || !v.Pass || v.CE != nil {
			t.Errorf("%s: self verify = %+v, want clean pass", name, v)
		}
		if v.Passed != v.Total || v.Total == 0 {
			t.Errorf("%s: passed %d/%d, want full nonzero grid", name, v.Passed, v.Total)
		}
	}
}

func TestOracleNoOracle(t *testing.T) {
	b := refBackend(t, "RISCV")
	fn := selfFunction(t, b, "isLegalICmpImmediate")
	if v := (&Oracle{}).Verify(fn); !v.NoOracle {
		t.Errorf("nil-ref oracle: %+v, want NoOracle", v)
	}
	var nilOracle *Oracle
	if v := nilOracle.Verify(fn); !v.NoOracle {
		t.Errorf("nil oracle: %+v, want NoOracle", v)
	}
	ghost := &generate.Function{Name: "noSuchInterfaceFunc", Statements: fn.Statements}
	if v := (&Oracle{Ref: b}).Verify(ghost); !v.NoOracle {
		t.Errorf("unknown function: %+v, want NoOracle", v)
	}
}

func TestOracleUnparseable(t *testing.T) {
	b := refBackend(t, "RISCV")
	fn := &generate.Function{Name: "isLegalICmpImmediate", Target: "RISCV"}
	v := (&Oracle{Ref: b}).Verify(fn)
	if v.Pass || v.CE == nil || !strings.Contains(v.CE.Got, "unparseable") {
		t.Errorf("empty function verdict = %+v, want unparseable counterexample", v)
	}
}

func TestOracleCounterexampleAndSuspects(t *testing.T) {
	b := refBackend(t, "RISCV")
	fn := selfFunction(t, b, "isLegalICmpImmediate")
	row, _ := corrupt(t, fn, "return Imm >=", "  return Imm >= -16 && Imm < 16;")

	v := (&Oracle{Ref: b}).Verify(fn)
	if v.Pass {
		t.Fatal("corrupted function passed verification")
	}
	if v.CE == nil || v.CE.Input == "" || v.CE.Got == v.CE.Want {
		t.Fatalf("counterexample = %+v, want concrete diverging input", v.CE)
	}
	if v.Passed == 0 || v.Passed >= v.Total {
		t.Errorf("passed %d/%d, want a partial score", v.Passed, v.Total)
	}
	found := false
	for _, s := range v.Suspects {
		if s.Row == row {
			found = true
		}
	}
	if !found {
		t.Errorf("suspects %+v do not implicate corrupted row %d", v.Suspects, row)
	}
	if v.CE.Row != v.Suspects[0].Row {
		t.Errorf("counterexample row %d != strongest suspect %d", v.CE.Row, v.Suspects[0].Row)
	}
}

func TestOracleTextualFallback(t *testing.T) {
	b := refBackend(t, "RISCV")
	u := eval.NewUniverse(b)
	name := ""
	for _, f := range corpus.AllFuncs() {
		if b.Funcs[f.Name] != nil && len(eval.Suite(f.Name, u)) == 0 {
			name = f.Name
			break
		}
	}
	if name == "" {
		t.Skip("every implemented function has a suite")
	}
	o := &Oracle{Ref: b}
	fn := selfFunction(t, b, name)
	if v := o.Verify(fn); !v.Pass {
		t.Errorf("%s: textual self verify failed: %+v", name, v)
	}
	fn.Statements[len(fn.Statements)/2].Text = "int totallyBogus = 99;"
	v := o.Verify(fn)
	if v.Pass || v.CE == nil || !strings.Contains(v.CE.Want, "text equality") {
		t.Errorf("%s: corrupted textual verdict = %+v, want textual counterexample", name, v)
	}
}

// ---- engine ---------------------------------------------------------------

func TestEngineVerifyPassesCleanFunction(t *testing.T) {
	b := refBackend(t, "RISCV")
	fn := selfFunction(t, b, "isLegalICmpImmediate")
	dec := &stubDecoder{}
	NewEngine(&Oracle{Ref: b}, dec, Options{}, nil).Run(context.Background(), fn, -1)
	if fn.Verify == nil || fn.Verify.Status != generate.VerifyPassed {
		t.Fatalf("verify = %+v, want VerifyPassed", fn.Verify)
	}
	if fn.Verify.Rounds != 0 || dec.calls != 0 {
		t.Errorf("rounds=%d decoderCalls=%d, want no repair work on a passing function",
			fn.Verify.Rounds, dec.calls)
	}
}

func TestEngineRepairsCorruptedStatement(t *testing.T) {
	b := refBackend(t, "RISCV")
	fn := selfFunction(t, b, "isLegalICmpImmediate")
	row, orig := corrupt(t, fn, "return Imm >=", "  return Imm >= -16 && Imm < 16;")

	dec := &stubDecoder{cands: map[int][]generate.Statement{
		row: {
			{Row: row, Text: "  return true;", Score: 1},
			{Row: row, Text: orig, Score: 1},
		},
	}}
	NewEngine(&Oracle{Ref: b}, dec, Options{}, nil).Run(context.Background(), fn, -1)

	v := fn.Verify
	if v == nil || v.Status != generate.VerifyRepaired {
		t.Fatalf("verify = %+v, want VerifyRepaired", v)
	}
	if v.Rounds < 1 || v.Counterexample != "" {
		t.Errorf("rounds=%d ce=%q, want >=1 round and cleared counterexample", v.Rounds, v.Counterexample)
	}
	if len(v.RepairedRows) != 1 || v.RepairedRows[0] != row {
		t.Errorf("repaired rows %v, want [%d]", v.RepairedRows, row)
	}
	idx := rowIndex(fn.Statements, row)
	if fn.Statements[idx].Text != orig {
		t.Errorf("row %d text %q, want restored %q", row, fn.Statements[idx].Text, orig)
	}
	// The repaired function verifies clean.
	if after := (&Oracle{Ref: b}).Verify(fn); !after.Pass {
		t.Errorf("repaired function still fails: %+v", after)
	}
}

func TestEngineFailureRevertsToOriginal(t *testing.T) {
	b := refBackend(t, "RISCV")
	fn := selfFunction(t, b, "isLegalICmpImmediate")
	row, _ := corrupt(t, fn, "return Imm >=", "  return Imm >= -16 && Imm < 16;")
	before := append([]generate.Statement(nil), fn.Statements...)

	dec := &stubDecoder{cands: map[int][]generate.Statement{
		row: {{Row: row, Text: "  return false;", Score: 1}},
	}}
	NewEngine(&Oracle{Ref: b}, dec, Options{}, nil).Run(context.Background(), fn, -1)

	v := fn.Verify
	if v == nil || v.Status != generate.VerifyFailed {
		t.Fatalf("verify = %+v, want VerifyFailed", v)
	}
	if v.Counterexample == "" {
		t.Error("failed verification without a counterexample")
	}
	if len(fn.Statements) != len(before) {
		t.Fatalf("statement count changed: %d != %d", len(fn.Statements), len(before))
	}
	for i := range before {
		if fn.Statements[i] != before[i] {
			t.Errorf("row %d mutated after failed repair: %+v != %+v", i, fn.Statements[i], before[i])
		}
	}
}

func TestEngineVerifyOnlySkipsRepair(t *testing.T) {
	b := refBackend(t, "RISCV")
	fn := selfFunction(t, b, "isLegalICmpImmediate")
	row, orig := corrupt(t, fn, "return Imm >=", "  return Imm >= -16 && Imm < 16;")

	dec := &stubDecoder{cands: map[int][]generate.Statement{
		row: {{Row: row, Text: orig, Score: 1}},
	}}
	// maxRounds 0 is the degrade ladder's skip-repair rung: status and
	// counterexample land, but no candidate is ever tried.
	NewEngine(&Oracle{Ref: b}, dec, Options{}, nil).Run(context.Background(), fn, 0)
	v := fn.Verify
	if v == nil || v.Status != generate.VerifyFailed || v.Rounds != 0 {
		t.Fatalf("verify = %+v, want VerifyFailed with 0 rounds", v)
	}
	if dec.calls != 0 {
		t.Errorf("decoder called %d times under skip-repair", dec.calls)
	}
}

func TestEngineNoOracle(t *testing.T) {
	b := refBackend(t, "RISCV")
	fn := selfFunction(t, b, "isLegalICmpImmediate")
	NewEngine(&Oracle{}, &stubDecoder{}, Options{}, nil).Run(context.Background(), fn, -1)
	if fn.Verify == nil || fn.Verify.Status != generate.VerifyNoOracle {
		t.Fatalf("verify = %+v, want VerifyNoOracle", fn.Verify)
	}
}

func TestEngineContextCancellation(t *testing.T) {
	b := refBackend(t, "RISCV")
	fn := selfFunction(t, b, "isLegalICmpImmediate")
	row, orig := corrupt(t, fn, "return Imm >=", "  return Imm >= -16 && Imm < 16;")
	dec := &stubDecoder{cands: map[int][]generate.Statement{
		row: {{Row: row, Text: orig, Score: 1}},
	}}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	NewEngine(&Oracle{Ref: b}, dec, Options{}, nil).Run(ctx, fn, -1)
	if fn.Verify == nil || fn.Verify.Status != generate.VerifyFailed {
		t.Fatalf("verify = %+v, want VerifyFailed under cancelled context", fn.Verify)
	}
	if dec.calls != 0 {
		t.Errorf("decoder called %d times under cancelled context", dec.calls)
	}
}

func TestEnginePanicIsolation(t *testing.T) {
	b := refBackend(t, "RISCV")
	fn := selfFunction(t, b, "isLegalICmpImmediate")
	corrupt(t, fn, "return Imm >=", "  return Imm >= -16 && Imm < 16;")
	before := append([]generate.Statement(nil), fn.Statements...)

	o := obs.New(nil)
	eng := NewEngine(&Oracle{Ref: b}, &stubDecoder{panic: true}, Options{}, o)
	eng.Run(context.Background(), fn, -1) // must not crash the caller
	if fn.Verify == nil || fn.Verify.Status != generate.VerifyFailed {
		t.Fatalf("verify = %+v, want VerifyFailed after decoder panic", fn.Verify)
	}
	if got := eng.m.panics.Value(); got < 1 {
		t.Errorf("repair.verify_panics = %v, want >= 1", got)
	}
	for i := range before {
		if fn.Statements[i] != before[i] {
			t.Errorf("row %d mutated after panicked repair", i)
		}
	}
}

func TestEngineNilAndFailedFunctions(t *testing.T) {
	eng := NewEngine(&Oracle{}, nil, Options{}, nil)
	eng.Run(context.Background(), nil, -1) // must not crash
	failed := &generate.Function{Name: "x", Err: "decode exploded"}
	eng.Run(context.Background(), failed, -1)
	if failed.Verify != nil {
		t.Errorf("failed function got verification %+v, want none", failed.Verify)
	}
	var nilEngine *Engine
	nilEngine.Run(context.Background(), failed, -1) // nil engine is inert
}
