package repair

import (
	"context"
	"fmt"
	"log"
	"sync"

	"vega/internal/generate"
	"vega/internal/obs"
)

// Decoder supplies constrained re-decoding for one template row: the
// alternative statements the model (and the training corpus) can offer
// once the current candidate is refuted. Implementations must be
// deterministic — candidate order is part of the repair loop's
// byte-determinism contract — and must honor banned (refuted texts are
// pruned, not re-proposed).
type Decoder interface {
	Candidates(fnName string, row int, banned []string, forcePresent bool) []generate.Statement
}

// Options bounds the CEGAR loop.
type Options struct {
	// MaxRounds bounds repair rounds per function (<=0 means the
	// DefaultRounds of 3).
	MaxRounds int
	// MaxCandidates bounds candidates tried per suspect per round
	// (<=0 = DefaultCandidates).
	MaxCandidates int
	// MaxSuspects bounds how many suspect rows one round examines
	// (<=0 = DefaultSuspects).
	MaxSuspects int
}

// Default bounds: three rounds of up to four suspects, six candidates
// each, keeps worst-case verification work per function small while
// covering the dominant single-statement divergences.
const (
	DefaultRounds     = 3
	DefaultCandidates = 6
	DefaultSuspects   = 4
)

func (o Options) filled() Options {
	if o.MaxRounds <= 0 {
		o.MaxRounds = DefaultRounds
	}
	if o.MaxCandidates <= 0 {
		o.MaxCandidates = DefaultCandidates
	}
	if o.MaxSuspects <= 0 {
		o.MaxSuspects = DefaultSuspects
	}
	return o
}

// engineMetrics caches the repair instruments (nil and inert without an
// observer, like every obs consumer in the pipeline).
type engineMetrics struct {
	attempted *obs.Counter   // repair.attempted: functions verified
	noOracle  *obs.Counter   // repair.no_oracle: no ground truth to execute against
	passed    *obs.Counter   // repair.passed: passed on first verification
	repaired  *obs.Counter   // repair.repaired: recovered by constrained re-decoding
	failed    *obs.Counter   // repair.failed: rounds exhausted, original returned
	rounds    *obs.Histogram // repair.rounds: CEGAR rounds per non-passing function
	tried     *obs.Counter   // repair.candidates_tried: candidate verifications run
	panics    *obs.Counter   // repair.verify_panics: panics recovered inside verify/repair
}

func newEngineMetrics(o *obs.Obs) engineMetrics {
	return engineMetrics{
		attempted: o.Counter("repair.attempted"),
		noOracle:  o.Counter("repair.no_oracle"),
		passed:    o.Counter("repair.passed"),
		repaired:  o.Counter("repair.repaired"),
		failed:    o.Counter("repair.failed"),
		rounds:    o.Histogram("repair.rounds"),
		tried:     o.Counter("repair.candidates_tried"),
		panics:    o.Counter("repair.verify_panics"),
	}
}

// Engine runs the verify-and-repair loop over generated functions. It is
// stateless between functions (the ban list is per-call), so one engine
// is safely shared by every generation worker.
type Engine struct {
	oracle *Oracle
	dec    Decoder
	opt    Options
	obs    *obs.Obs
	m      engineMetrics

	panicWarn sync.Once
}

// NewEngine builds an engine over one oracle and decoder. dec may be nil:
// verification still runs, but failing functions go straight to
// VerifyFailed (no candidates to try).
func NewEngine(o *Oracle, dec Decoder, opt Options, ob *obs.Obs) *Engine {
	return &Engine{oracle: o, dec: dec, opt: opt.filled(), obs: ob, m: newEngineMetrics(ob)}
}

// Run verifies fn and, on divergence, attempts up to maxRounds CEGAR
// repair rounds (maxRounds < 0 uses the engine default; 0 verifies only —
// the degrade ladder's skip-repair rung). fn.Verify is always set on
// return; fn.Statements is replaced only when a repair candidate fully
// passes verification, and reverts to the original generation otherwise.
//
// The call is a panic boundary per verification: a crash inside the
// interpreter or parser refutes the candidate being tried (or fails the
// round) instead of killing the generation worker.
func (e *Engine) Run(ctx context.Context, fn *generate.Function, maxRounds int) {
	if e == nil || fn == nil || fn.Failed() {
		return
	}
	if maxRounds < 0 {
		maxRounds = e.opt.MaxRounds
	}
	ctx, span := obs.Start(obs.With(ctx, e.obs), "repair/function",
		obs.String("func", fn.Name))
	defer span.End()

	ver := &generate.Verification{}
	fn.Verify = ver
	e.m.attempted.Inc()

	v := e.verifySafe(fn)
	switch {
	case v.NoOracle:
		ver.Status = generate.VerifyNoOracle
		e.m.noOracle.Inc()
		return
	case v.Pass:
		ver.Status = generate.VerifyPassed
		e.m.passed.Inc()
		return
	}
	ver.Counterexample = v.CE.String()

	orig := append([]generate.Statement(nil), fn.Statements...)
	work := append([]generate.Statement(nil), fn.Statements...)
	banned := map[int][]string{}
	for round := 1; round <= maxRounds; round++ {
		if ctx.Err() != nil {
			break
		}
		ver.Rounds = round
		improved := e.round(ctx, fn, &work, &v, banned)
		if v.Pass || !improved {
			break
		}
		ver.Counterexample = v.CE.String()
	}
	if v.Pass {
		fn.Statements = work
		ver.Status = generate.VerifyRepaired
		ver.RepairedRows = changedRows(orig, work)
		ver.Counterexample = ""
		e.m.repaired.Inc()
		e.m.rounds.Observe(float64(ver.Rounds))
		return
	}
	fn.Statements = orig
	ver.Status = generate.VerifyFailed
	e.m.failed.Inc()
	if ver.Rounds > 0 {
		e.m.rounds.Observe(float64(ver.Rounds))
	}
}

// round tries one constrained re-decode pass: for each suspect row (in
// divergence order), every non-banned candidate is substituted and
// re-verified. The first fully passing candidate ends the repair; short
// of that, the candidate passing the most regression cases is adopted
// when it strictly improves the current verdict, and the refuted text is
// banned for later rounds. Returns whether the verdict improved.
func (e *Engine) round(ctx context.Context, fn *generate.Function, work *[]generate.Statement, v *Verdict, banned map[int][]string) (improved bool) {
	defer func() {
		if r := recover(); r != nil {
			// A panic mid-round (bad candidate text crashing the lexer,
			// say) abandons the round but keeps the best state adopted so
			// far; the loop's caller sees no improvement and stops.
			e.m.panics.Inc()
			e.warnPanic(fn.Name, r)
			improved = false
		}
	}()
	// Wholesale re-materialization first: when the divergence is
	// widespread — a render so broken there is no single-row gradient to
	// climb (the degenerate case: every statement dropped, nothing
	// parses) — substitute every suspect's top surviving candidate in one
	// move and verify once. A pass ends the repair; a strict improvement
	// is adopted and the next round re-localizes from the new verdict.
	if len(v.Suspects) >= 2 && e.batchSubstitute(ctx, fn, work, v, banned) {
		return true
	}
	suspects := v.Suspects
	if len(suspects) > e.opt.MaxSuspects {
		suspects = suspects[:e.opt.MaxSuspects]
	}
	for _, s := range suspects {
		if ctx.Err() != nil {
			return false
		}
		idx := rowIndex(*work, s.Row)
		if idx < 0 {
			continue
		}
		rowBans := append(append([]string(nil), banned[s.Row]...), s.Text)
		var cands []generate.Statement
		if e.dec != nil {
			cands = e.dec.Candidates(fn.Name, s.Row, rowBans, s.ForcePresent)
		}
		if len(cands) > e.opt.MaxCandidates {
			cands = cands[:e.opt.MaxCandidates]
		}
		cur := (*work)[idx]
		var best *Verdict
		var bestStmt generate.Statement
		for _, cand := range cands {
			if cand.Row != s.Row || sameStatement(cand, cur) || inBans(rowBans, cand) {
				continue
			}
			(*work)[idx] = cand
			trial := e.verifySafe(&generate.Function{
				Name: fn.Name, Module: fn.Module, Target: fn.Target, Statements: *work,
			})
			e.m.tried.Inc()
			if trial.Pass {
				*v = trial
				return true
			}
			if best == nil || trial.Passed > best.Passed {
				t := trial
				best, bestStmt = &t, cand
			}
		}
		(*work)[idx] = cur
		if best != nil && best.Passed > v.Passed {
			// Adopt the best partial improvement, refute the old text,
			// and let the next round re-localize from the new verdict.
			(*work)[idx] = bestStmt
			banned[s.Row] = append(banned[s.Row], cur.Text)
			*v = *best
			return true
		}
	}
	return false
}

// batchSubstitute applies the first non-banned candidate of every suspect
// row simultaneously, verifies the combined function once, and keeps the
// batch only when it passes or strictly improves the verdict. The current
// row text is NOT banned here: a dropped statement's own text, re-proposed
// above the confidence threshold, is a legitimate (and common) fix.
func (e *Engine) batchSubstitute(ctx context.Context, fn *generate.Function, work *[]generate.Statement, v *Verdict, banned map[int][]string) bool {
	if e.dec == nil || ctx.Err() != nil {
		return false
	}
	saved := append([]generate.Statement(nil), *work...)
	changed := false
	for _, s := range v.Suspects {
		idx := rowIndex(*work, s.Row)
		if idx < 0 {
			continue
		}
		rowBans := banned[s.Row]
		for _, cand := range e.dec.Candidates(fn.Name, s.Row, rowBans, s.ForcePresent) {
			if cand.Row != s.Row || sameStatement(cand, (*work)[idx]) || inBans(rowBans, cand) {
				continue
			}
			(*work)[idx] = cand
			changed = true
			break
		}
	}
	if !changed {
		return false
	}
	trial := e.verifySafe(&generate.Function{
		Name: fn.Name, Module: fn.Module, Target: fn.Target, Statements: *work,
	})
	e.m.tried.Inc()
	if trial.Pass || trial.Passed > v.Passed {
		*v = trial
		return true
	}
	*work = saved
	return false
}

// verifySafe is Oracle.Verify behind a panic boundary: a crash during
// verification refutes the function under test instead of propagating.
func (e *Engine) verifySafe(fn *generate.Function) (v Verdict) {
	defer func() {
		if r := recover(); r != nil {
			e.m.panics.Inc()
			e.warnPanic(fn.Name, r)
			v = Verdict{CE: &Counterexample{
				Got:  fmt.Sprintf("verification panic: %v", r),
				Want: "a clean execution",
				Row:  -1,
			}}
		}
	}()
	return e.oracle.Verify(fn)
}

// warnPanic logs the first recovered verification panic once per engine;
// the rest stay visible through repair.verify_panics.
func (e *Engine) warnPanic(fnName string, r any) {
	e.panicWarn.Do(func() {
		log.Printf("repair: recovered verification panic in %s: %v (counted in repair.verify_panics)", fnName, r)
	})
}

func rowIndex(sts []generate.Statement, row int) int {
	for i := range sts {
		if sts[i].Row == row {
			return i
		}
	}
	return -1
}

// sameStatement compares the fields that decide a statement's rendered
// effect. Kept-ness matters: a candidate with a dropped row's exact text
// but an above-threshold score is a real fix (it re-keeps the statement),
// not a re-proposal of the same thing.
func sameStatement(a, b generate.Statement) bool {
	return a.Absent == b.Absent && a.Text == b.Text && a.Kept() == b.Kept()
}

func inBans(bans []string, s generate.Statement) bool {
	if s.Absent {
		return false
	}
	for _, b := range bans {
		if b == s.Text {
			return true
		}
	}
	return false
}

// changedRows lists rows whose statement differs between the original and
// repaired forms, in row order.
func changedRows(orig, repaired []generate.Statement) []int {
	var out []int
	for i := range repaired {
		if i >= len(orig) || !sameStatement(orig[i], repaired[i]) {
			out = append(out, repaired[i].Row)
		}
	}
	return out
}
