// Package repair closes VEGA's correctness loop: after Stage 3 emits a
// function, the oracle executes it against the held-out ground-truth
// implementation through the internal/eval regression harness (the same
// interpreter stack the paper's pass@1 numbers come from). On divergence
// it captures a minimal counterexample — the first failing input grid
// case plus the first diverging statement — and the engine re-decodes the
// refuted statements under constraints: refuted candidates are pruned,
// surviving beams are re-ranked by verification outcome, and the loop
// retries for a bounded number of CEGAR rounds. A function that cannot be
// repaired is returned exactly as generated, so verified pass@1 is never
// below plain pass@1.
package repair

import (
	"fmt"
	"sort"
	"strings"

	"vega/internal/corpus"
	"vega/internal/cpp"
	"vega/internal/eval"
	"vega/internal/generate"
	"vega/internal/gumtree"
	"vega/internal/interp"
	"vega/internal/template"
)

// Counterexample is the minimal divergence witness the oracle derives
// from the first failing regression case.
type Counterexample struct {
	// Input renders the failing case's arguments ("" for functions whose
	// only oracle is textual equivalence).
	Input string
	// Got / Want render the observed and expected outcomes.
	Got, Want string
	// Row is the template row of the first diverging statement (-1 when
	// the divergence could not be localized).
	Row int
	// Stmt is the refuted statement's text ("" when the divergence is a
	// statement the generation dropped).
	Stmt string
}

func (ce *Counterexample) String() string {
	if ce == nil {
		return ""
	}
	var b strings.Builder
	if ce.Input != "" {
		fmt.Fprintf(&b, "on %s: ", ce.Input)
	}
	fmt.Fprintf(&b, "got %s, want %s", ce.Got, ce.Want)
	if ce.Row >= 0 {
		if ce.Stmt != "" {
			fmt.Fprintf(&b, "; first diverging statement (row %d): %s", ce.Row, ce.Stmt)
		} else {
			fmt.Fprintf(&b, "; first divergence at dropped row %d", ce.Row)
		}
	}
	return b.String()
}

// Suspect is one statement the counterexample implicates: a candidate row
// for constrained re-decoding.
type Suspect struct {
	// Row is the template row to re-decode.
	Row int
	// Text is the row's current text (the refuted candidate; "" when the
	// row is currently absent/dropped).
	Text string
	// ForcePresent marks rows the alignment shows as missing relative to
	// the reference: re-decoding should propose present statements, not
	// the absent marker again.
	ForcePresent bool
}

// Verdict is one verification outcome.
type Verdict struct {
	// NoOracle: no ground-truth implementation exists for the function.
	NoOracle bool
	// Pass: the function agrees with the reference on every observable.
	Pass bool
	// Passed / Total count regression cases (for functions with a suite)
	// or exactly-matching statements (textual fallback) — the score the
	// engine re-ranks repair candidates by.
	Passed, Total int
	// CE is the minimal counterexample of a failing verdict.
	CE *Counterexample
	// Suspects lists the implicated rows, strongest first.
	Suspects []Suspect
}

// Oracle verifies generated functions against one reference backend.
// Each Verify call builds a fresh eval.Universe, so the oracle is safe
// for concurrent use from the generation worker pool.
type Oracle struct {
	// Ref is the ground-truth backend (nil = nothing to verify against).
	Ref *corpus.Backend
}

// Verify executes fn against the reference implementation and derives
// the counterexample and suspect set on divergence. The pass criterion
// matches eval.EvaluateFunction exactly: the rendered function must
// reparse, and either agree with the reference on every regression case
// or (for functions without a suite) be canonically text-equal.
func (o *Oracle) Verify(fn *generate.Function) Verdict {
	if o == nil || o.Ref == nil {
		return Verdict{NoOracle: true}
	}
	ref := o.Ref.Funcs[fn.Name]
	if ref == nil {
		return Verdict{NoOracle: true}
	}
	u := eval.NewUniverse(o.Ref)
	var v Verdict
	genFn, perr := fn.Parse()
	switch {
	case perr != nil:
		v.CE = &Counterexample{
			Got:  "unparseable function (" + firstLine(perr.Error()) + ")",
			Want: "a parseable function",
			Row:  -1,
		}
	default:
		cpp.Normalize(genFn)
		cases := eval.Suite(fn.Name, u)
		if len(cases) == 0 {
			v = textualVerdict(genFn, ref)
		} else {
			v = suiteVerdict(u, genFn, ref, cases)
		}
	}
	if !v.Pass {
		v.Suspects = suspects(fn, ref)
		if v.CE != nil && v.CE.Row < 0 && len(v.Suspects) > 0 {
			v.CE.Row = v.Suspects[0].Row
			v.CE.Stmt = v.Suspects[0].Text
		}
	}
	return v
}

// suiteVerdict runs the regression grid; the first failing case becomes
// the counterexample (suites enumerate simple inputs first, so the first
// failure is the minimal witness).
func suiteVerdict(u *eval.Universe, genFn, ref *cpp.Node, cases []eval.Case) Verdict {
	v := Verdict{Total: len(cases)}
	for _, c := range cases {
		got := u.RunCase(genFn, c)
		want := u.RunCase(ref, c)
		// eval.FunctionPasses fails any function that raises a runtime
		// error, even where the reference does too — mirror that.
		if !got.Err && got.Equal(want) {
			v.Passed++
			continue
		}
		if v.CE == nil {
			v.CE = &Counterexample{
				Input: renderCase(c),
				Got:   renderOutcome(got),
				Want:  renderOutcome(want),
				Row:   -1,
			}
		}
	}
	v.Pass = v.Passed == v.Total
	return v
}

// textualVerdict is the no-suite fallback: canonical statement equality,
// scored by exactly-matching aligned statements so the engine still has a
// gradient to re-rank candidates by.
func textualVerdict(genFn, ref *cpp.Node) Verdict {
	genTexts := canonicalStatements(genFn)
	refTexts := canonicalStatements(ref)
	v := Verdict{Total: len(refTexts)}
	if strings.Join(genTexts, "\n") == strings.Join(refTexts, "\n") {
		v.Pass = true
		v.Passed = v.Total
		return v
	}
	pairs := gumtree.AlignTokenized(tokenizeLines(genTexts), tokenizeLines(refTexts),
		gumtree.AlignOptions{MinSim: 0.3})
	for _, p := range pairs {
		if p.A >= 0 && p.B >= 0 && genTexts[p.A] == refTexts[p.B] {
			v.Passed++
		}
	}
	v.CE = &Counterexample{
		Got:  fmt.Sprintf("%d/%d statements textually equivalent", v.Passed, v.Total),
		Want: "canonical text equality (function has no execution suite)",
		Row:  -1,
	}
	return v
}

// suspects localizes the divergence: the generated function's kept
// statements are aligned against the reference's canonical statements.
// Mismatched rows come first (wrong values), then spurious rows (matched
// nothing), then — when reference statements went unmatched — the
// dropped/absent rows with ForcePresent set.
func suspects(fn *generate.Function, ref *cpp.Node) []Suspect {
	type keptRow struct {
		row  int
		text string // raw
		can  string // canonical
	}
	var kept []keptRow
	for _, s := range fn.Statements {
		if s.Kept() {
			kept = append(kept, keptRow{row: s.Row, text: s.Text, can: canonicalText(s.Text)})
		}
	}
	refTexts := canonicalStatements(ref)
	tg := make([][]string, len(kept))
	for i, k := range kept {
		tg[i] = tokenizeLine(k.can)
	}
	pairs := gumtree.AlignTokenized(tg, tokenizeLines(refTexts),
		gumtree.AlignOptions{MinSim: 0.3})
	var mismatched, spurious []Suspect
	refMatched := make([]bool, len(refTexts))
	for _, p := range pairs {
		switch {
		case p.A >= 0 && p.B >= 0:
			refMatched[p.B] = true
			if kept[p.A].can != refTexts[p.B] {
				mismatched = append(mismatched, Suspect{Row: kept[p.A].row, Text: kept[p.A].text})
			}
		case p.A >= 0:
			spurious = append(spurious, Suspect{Row: kept[p.A].row, Text: kept[p.A].text})
		}
	}
	out := append(mismatched, spurious...)
	missing := false
	for _, m := range refMatched {
		if !m {
			missing = true
			break
		}
	}
	if missing {
		for _, s := range fn.Statements {
			if !s.Kept() {
				out = append(out, Suspect{Row: s.Row, Text: s.Text, ForcePresent: true})
			}
		}
	}
	return out
}

// --- rendering helpers ---

func renderCase(c eval.Case) string {
	parts := make([]string, 0, len(c.Args)+len(c.Globals))
	for _, k := range sortedKeys(c.Args) {
		parts = append(parts, k+"="+renderValue(c.Args[k]))
	}
	for _, k := range sortedKeys(c.Globals) {
		parts = append(parts, k+"="+renderValue(c.Globals[k]))
	}
	if len(parts) == 0 {
		return "()"
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

func sortedKeys(m map[string]any) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func renderValue(v any) string {
	if obj, ok := v.(*interp.Object); ok {
		return "<" + obj.Name + ">"
	}
	return fmt.Sprintf("%v", v)
}

func renderOutcome(o eval.Outcome) string {
	switch {
	case o.Err:
		return "runtime error"
	case o.Fatal:
		return "fatal"
	}
	s := "ret=" + o.Ret
	if len(o.Effects) > 0 {
		s += " effects=[" + strings.Join(o.Effects, "; ") + "]"
	}
	return s
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

// --- canonical text helpers (the comparison space eval uses) ---

func canonicalStatements(fn *cpp.Node) []string {
	var out []string
	for _, s := range cpp.SplitFunction(fn) {
		out = append(out, canonicalText(s.Text))
	}
	return out
}

func canonicalText(text string) string {
	toks, err := cpp.Lex(text)
	if err != nil {
		return text
	}
	return template.JoinTokens(cpp.TokenTexts(toks))
}

func tokenizeLines(lines []string) [][]string {
	out := make([][]string, len(lines))
	for i, l := range lines {
		out[i] = tokenizeLine(l)
	}
	return out
}

func tokenizeLine(l string) []string {
	toks, err := cpp.Lex(l)
	if err != nil {
		return []string{l}
	}
	return cpp.TokenTexts(toks)
}
