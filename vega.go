// Package vega is a complete, self-contained reproduction of "VEGA:
// Automatically Generating Compiler Backends using a Pre-trained
// Transformer Model" (CGO 2025).
//
// VEGA generates LLVM-style compiler backends for new targets from their
// target description files alone. It abstracts the target-specific
// implementations of each standard compiler interface function into a
// function template of common code plus placeholders, mines Boolean
// target-independent and string target-dependent properties for every
// statement, fine-tunes a transformer to emit target-specific statements
// from those feature vectors, and annotates everything it generates with
// confidence scores.
//
// The top-level API wraps the pipeline end to end:
//
//	c, _ := vega.BuildCorpus()
//	p, _ := vega.NewPipeline(c, vega.DefaultConfig())
//	res, _ := p.Train()
//	backend := p.GenerateBackend("RISCV")
//	report := vega.Evaluate(p, backend)
//
// Training and generation honor context cancellation and survive bad
// states — use p.TrainContext / p.GenerateBackendContext for deadlines,
// and see DESIGN.md's "Failure modes & recovery" for the panic
// isolation, checkpoint checksumming, and NaN-retry behaviour.
//
// Subsystems live under internal/: the C++-subset frontend (cpp), the
// mini TableGen (tablegen), GumTree-style alignment (gumtree),
// templatization (template), feature selection (feature), the from-scratch
// transformer stack (model), the synthetic backend corpus (corpus), the
// regression interpreter (interp), evaluation (eval), the fork-flow
// baseline (forkflow), and the Fig. 10 substrate (compiler, sim, bench).
// DESIGN.md maps every paper experiment to its module and bench target.
package vega

import (
	"vega/internal/core"
	"vega/internal/corpus"
	"vega/internal/eval"
	"vega/internal/generate"
	"vega/internal/template"
)

// Config sizes the pipeline; see DefaultConfig.
type Config = core.Config

// Pipeline is the VEGA pipeline: pre-processing through Stage 3.
type Pipeline = core.Pipeline

// Corpus is the synthetic fleet of backends VEGA trains on.
type Corpus = corpus.Corpus

// Backend is a generated backend with per-statement confidence scores.
type Backend = generate.Backend

// Function is one generated interface function.
type Function = generate.Function

// Report is the pass@1 evaluation of a generated backend.
type Report = eval.BackendEval

// TrainResult summarizes Stage 2.
type TrainResult = core.TrainResult

// DefaultConfig returns single-core-friendly pipeline settings.
func DefaultConfig() Config { return core.DefaultConfig() }

// BuildCorpus renders the training fleet and the three held-out
// evaluation targets (RISCV, RI5CY, XCore) with their description files.
func BuildCorpus() (*Corpus, error) { return corpus.Build() }

// NewPipeline runs Stage 1 (templatization + feature selection) over the
// corpus.
func NewPipeline(c *Corpus, cfg Config) (*Pipeline, error) { return core.New(c, cfg) }

// NewStreamingPipeline runs Stage 1 over a streaming corpus provider
// (e.g. corpus.NewStream(corpus.FamilyTargets())): function groups are
// rendered on demand instead of held resident, so memory stays bounded
// by one group regardless of fleet size. Output is byte-identical to
// NewPipeline over the equivalent resident corpus.
func NewStreamingPipeline(pr corpus.Provider, cfg Config) (*Pipeline, error) {
	return core.NewFromProvider(pr, cfg)
}

// Evaluate scores a generated backend against its reference with the
// regression harness (pass@1, statement accuracy, error taxonomy).
func Evaluate(p *Pipeline, b *Backend) *Report {
	templates := map[string]*template.FunctionTemplate{}
	for _, g := range p.Groups {
		templates[g.Func.Name] = g.FT
	}
	ref, _ := p.ReferenceBackend(b.Target)
	return eval.EvaluateBackend(b, ref, templates)
}

// EvalTargets lists the held-out targets, in the paper's order.
func EvalTargets() []string { return []string{"RISCV", "RI5CY", "XCore"} }
