package vega

// One testing.B benchmark per table and figure of the paper's evaluation
// (see DESIGN.md's per-experiment index). The expensive shared state — a
// trained pipeline at a reduced, single-core-friendly budget — is built
// once; each benchmark then measures its experiment's own work. The
// paper-style printed tables come from `go run ./cmd/vega-bench -exp all`,
// which these benchmarks mirror code-path for code-path.

import (
	"context"
	"math"
	"runtime"
	"sync"
	"testing"

	"vega/internal/bench"
	"vega/internal/compiler"
	"vega/internal/core"
	"vega/internal/corpus"
	"vega/internal/cpp"
	"vega/internal/eval"
	"vega/internal/forkflow"
	"vega/internal/model"
	"vega/internal/sim"
)

type fixture struct {
	c     *Corpus
	p     *Pipeline
	res   *TrainResult
	gens  map[string]*Backend
	evals map[string]*Report
}

var (
	fixOnce sync.Once
	fix     *fixture
	fixErr  error
)

// sharedFixture trains one pipeline at benchmark budget and generates the
// three evaluation backends.
func sharedFixture(b *testing.B) *fixture {
	b.Helper()
	fixOnce.Do(func() {
		c, err := BuildCorpus()
		if err != nil {
			fixErr = err
			return
		}
		cfg := DefaultConfig()
		cfg.Train.Epochs = 6
		cfg.MaxSamples = 1500
		cfg.PretrainEpochs = 1
		cfg.VerifyCap = 120
		p, err := NewPipeline(c, cfg)
		if err != nil {
			fixErr = err
			return
		}
		res, err := p.Train()
		if err != nil {
			fixErr = err
			return
		}
		f := &fixture{c: c, p: p, res: res,
			gens: map[string]*Backend{}, evals: map[string]*Report{}}
		for _, tgt := range EvalTargets() {
			f.gens[tgt] = p.GenerateBackend(tgt)
			f.evals[tgt] = Evaluate(p, f.gens[tgt])
		}
		fix = f
	})
	if fixErr != nil {
		b.Fatal(fixErr)
	}
	return fix
}

// BenchmarkFig6TrainingTime measures one Stage 2 fine-tuning epoch on the
// standard fleet's full encoded sample set (the training half of the
// paper's cost story, reported beside Fig. 7's inference time). A fresh
// transformer is built outside the timer each iteration so the metric is
// pure epoch time.
func BenchmarkFig6TrainingTime(b *testing.B) {
	c, err := BuildCorpus()
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultConfig()
	p, err := NewPipeline(c, cfg)
	if err != nil {
		b.Fatal(err)
	}
	samples := p.TrainingData()
	mcfg := cfg.Model
	mcfg.Vocab = p.Vocab.Size()
	opt := cfg.Train
	opt.Epochs = 1
	opt.MinLoss = 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		m := model.NewTransformer(mcfg)
		b.StartTimer()
		model.Fit(m, samples, opt)
	}
	b.ReportMetric(float64(len(samples)), "samples/epoch")
}

// BenchmarkFig7InferenceTime measures Stage 3 generation of one complete
// backend (Fig. 7's quantity) on the production fast path — int8
// quantized decoding over the cross-function batched encoder — reporting
// per-module seconds. Output is identical to the float32 variant below
// (ambiguous rows re-decode at full precision), so the pairing in
// BENCH_stage3.json is a pure speed delta.
func BenchmarkFig7InferenceTime(b *testing.B) {
	f := sharedFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gen := f.p.GenerateBackendOptions(context.Background(), "RISCV",
			core.GenOptions{Quantize: true})
		b.StopTimer()
		b.ReportMetric(backendSeconds(gen), "s/backend")
		b.StartTimer()
	}
}

// BenchmarkFig7InferenceTimeParallel is the quantized benchmark with the
// Stage 3 generation worker pool widened to GOMAXPROCS (the default
// config pins Workers to 1 so the bare benchmark is a clean single-core
// number). Output is byte-identical for any worker count — the pool
// merges per-function results in corpus order — so the pairing against
// the bare name is a pure multi-core throughput delta; benchjson derives
// speedup_vs_1core from it. On a single-core box this honestly records
// ~1×; run `make bench-stage3` on a multi-core machine to measure the
// compounding the ROADMAP's sub-0.15 s/backend regime needs.
func BenchmarkFig7InferenceTimeParallel(b *testing.B) {
	f := sharedFixture(b)
	workers := runtime.GOMAXPROCS(0)
	saved := f.p.Cfg.Workers
	f.p.Cfg.Workers = workers
	defer func() { f.p.Cfg.Workers = saved }()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gen := f.p.GenerateBackendOptions(context.Background(), "RISCV",
			core.GenOptions{Quantize: true})
		b.StopTimer()
		b.ReportMetric(backendSeconds(gen), "s/backend")
		b.StartTimer()
	}
	b.ReportMetric(float64(workers), "workers")
}

// BenchmarkFig7InferenceTimeFloat32 is the full-precision baseline for
// the quantized benchmark above; benchjson derives the speedup from the
// pair ("X" vs "XFloat32").
func BenchmarkFig7InferenceTimeFloat32(b *testing.B) {
	f := sharedFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gen := f.p.GenerateBackend("RISCV")
		b.StopTimer()
		b.ReportMetric(backendSeconds(gen), "s/backend")
		b.StartTimer()
	}
}

// backendSeconds sums the per-module decode seconds Fig. 7 reports.
func backendSeconds(gen *Backend) float64 {
	total := 0.0
	for _, sec := range gen.Seconds {
		total += sec
	}
	return total
}

// BenchmarkFig8Accuracy measures the pass@1 evaluation of a generated
// backend and reports the function accuracy Fig. 8 plots.
func BenchmarkFig8Accuracy(b *testing.B) {
	f := sharedFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		be := Evaluate(f.p, f.gens["RISCV"])
		tot := be.Totals()
		b.ReportMetric(100*tot.FunctionAccuracy(), "%func-acc")
	}
}

// BenchmarkFig9Statements reports VEGA's and ForkFlow's statement-level
// accuracy (Fig. 9's series).
func BenchmarkFig9Statements(b *testing.B) {
	f := sharedFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vega := f.evals["RISCV"].Totals()
		ff := eval.EvaluateBackend(
			forkflow.Fork(f.c, forkflow.DefaultDonor, "RISCV"),
			f.c.Backends["RISCV"], nil).Totals()
		b.ReportMetric(100*vega.StatementAccuracy(), "%vega-stmt")
		b.ReportMetric(100*ff.StatementAccuracy(), "%fork-stmt")
	}
}

// BenchmarkTable2ErrorTaxonomy classifies generation errors (Table 2).
func BenchmarkTable2ErrorTaxonomy(b *testing.B) {
	f := sharedFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v, cs, def := f.evals["RISCV"].ErrorShare()
		b.ReportMetric(100*v, "%errV")
		b.ReportMetric(100*cs, "%errCS")
		b.ReportMetric(100*def, "%errDef")
	}
}

// BenchmarkTable3Statements aggregates accurate vs manual statement
// counts (Table 3).
func BenchmarkTable3Statements(b *testing.B) {
	f := sharedFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, tgt := range EvalTargets() {
			tot := f.evals[tgt].Totals()
			_ = tot.AccurateStatements
			_ = tot.ManualEffort
		}
	}
	tot := f.evals["RISCV"].Totals()
	b.ReportMetric(float64(tot.AccurateStatements), "accurate-stmts")
	b.ReportMetric(float64(tot.ManualEffort), "manual-stmts")
}

// BenchmarkTable4Effort runs the correction-effort model (Table 4).
func BenchmarkTable4Effort(b *testing.B) {
	f := sharedFixture(b)
	b.ResetTimer()
	var hours float64
	for i := 0; i < b.N; i++ {
		hours = eval.DeveloperA.TotalHours(f.evals["RISCV"].ByModule())
	}
	b.ReportMetric(hours, "est-hours")
}

// BenchmarkFig10Performance compiles and simulates one suite under the
// base tables at both optimization levels (Fig. 10's measurement loop).
func BenchmarkFig10Performance(b *testing.B) {
	tb := compiler.TablesFromSpec(corpus.FindTarget("RI5CY"))
	suite := bench.PULPLike()[:12]
	b.ResetTimer()
	var geo float64
	for i := 0; i < b.N; i++ {
		geo = 1
		for _, w := range suite {
			r0 := runWorkload(b, w, tb, 0)
			r3 := runWorkload(b, w, tb, 3)
			if r0.Return != r3.Return {
				b.Fatalf("%s: O0/O3 mismatch", w.Name)
			}
			geo *= float64(r0.Cycles) / float64(r3.Cycles)
		}
	}
	b.ReportMetric(geomean(geo, len(suite)), "geomean-speedup")
}

// BenchmarkFig10VegaBackend extracts tables from the corrected VEGA
// backend and verifies it compiles the suite identically to the base
// compiler (Fig. 10's VEGA series).
func BenchmarkFig10VegaBackend(b *testing.B) {
	f := sharedFixture(b)
	ref := f.c.Backends["RI5CY"]
	spec := corpus.FindTarget("RI5CY")
	corrected := map[string]*cpp.Node{}
	for _, r := range f.evals["RI5CY"].Results {
		fn := ref.Funcs[r.Name]
		if r.Accurate && r.Emitted {
			if gf := f.gens["RI5CY"].Function(r.Name); gf != nil {
				if parsed, err := gf.Parse(); err == nil {
					cpp.Normalize(parsed)
					fn = parsed
				}
			}
		}
		if fn != nil {
			corrected[r.Name] = fn
		}
	}
	u := eval.NewUniverse(ref)
	vegaTables, err := compiler.TablesFromBackend(spec, corrected, u.Env(0))
	if err != nil {
		b.Fatal(err)
	}
	baseTables, err := compiler.TablesFromBackend(spec, ref.Funcs, eval.NewUniverse(ref).Env(0))
	if err != nil {
		b.Fatal(err)
	}
	suite := bench.PULPLike()[:8]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, w := range suite {
			rBase := runWorkload(b, w, baseTables, 3)
			rVega := runWorkload(b, w, vegaTables, 3)
			if rBase.Return != rVega.Return {
				b.Fatalf("%s: corrected VEGA backend diverges from base", w.Name)
			}
		}
	}
}

// BenchmarkRepairLoop measures Stage 3 generation with the verify-and-
// repair loop on (the tentpole of the correctness-loop work), reporting
// the plain vs verified pass@1 the loop buys and the share of initially
// diverging functions it recovers. Repair reverts failed attempts, so
// %verified-pass1 >= %plain-pass1 holds by construction; the benchmark
// artifact (BENCH_repair.json) records the measured delta.
func BenchmarkRepairLoop(b *testing.B) {
	f := sharedFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gen := f.p.GenerateBackendOptions(context.Background(), "RISCV",
			core.GenOptions{Verify: true})
		b.StopTimer()
		rs := Evaluate(f.p, gen).Repair()
		b.ReportMetric(100*rs.PlainPass1(), "%plain-pass1")
		b.ReportMetric(100*rs.VerifiedPass1(), "%verified-pass1")
		b.ReportMetric(100*rs.RepairRate(), "%repair-rate")
		b.ReportMetric(float64(gen.Repaired), "repaired")
		b.StartTimer()
	}
}

// BenchmarkTrainingVerifyEM measures verification exact match (§4.1.2's
// 99.03% quantity) on the shared fixture.
func BenchmarkTrainingVerifyEM(b *testing.B) {
	f := sharedFixture(b)
	verify := 0.0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		verify = f.res.VerifyExactMatch
	}
	b.ReportMetric(100*verify, "%verify-EM")
}

// BenchmarkForkFlowBaseline measures the fork-and-rename baseline.
func BenchmarkForkFlowBaseline(b *testing.B) {
	c, err := BuildCorpus()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var acc float64
	for i := 0; i < b.N; i++ {
		ff := forkflow.Fork(c, forkflow.DefaultDonor, "RISCV")
		acc = eval.EvaluateBackend(ff, c.Backends["RISCV"], nil).Totals().FunctionAccuracy()
	}
	b.ReportMetric(100*acc, "%func-acc")
}

// BenchmarkStage1Templatization measures pre-processing + Stage 1 alone.
func BenchmarkStage1Templatization(b *testing.B) {
	c, err := BuildCorpus()
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewPipeline(c, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStage1TemplatizationWarm measures Stage 1 with a populated
// artifact cache: every iteration is a content-addressed cache hit, so
// the number is the floor a repeated CLI/harness run pays for Stage 1.
func BenchmarkStage1TemplatizationWarm(b *testing.B) {
	c, err := BuildCorpus()
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Stage1Cache = b.TempDir()
	if _, err := NewPipeline(c, cfg); err != nil { // populate outside the timer
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewPipeline(c, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStage1TemplatizationWarmOneDirty measures the incremental
// rebuild: a populated cache where each iteration edits exactly one
// target's implementation of one function, so one group misses and
// rebuilds while every other group hits. The per-iteration edit is
// distinct (StackAlign varies), so later iterations cannot silently
// degenerate into full warm hits. Sublinear vs the cold row is the
// tentpole's acceptance bar.
func BenchmarkStage1TemplatizationWarmOneDirty(b *testing.B) {
	c, err := BuildCorpus()
	if err != nil {
		b.Fatal(err)
	}
	fn, ok := corpus.FuncByName("getStackAlignment")
	if !ok {
		b.Fatal("no getStackAlignment")
	}
	spec := corpus.FindTarget("ARM")
	cfg := DefaultConfig()
	cfg.Stage1Cache = b.TempDir()
	if _, err := NewStreamingPipeline(c, cfg); err != nil { // populate outside the timer
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		edited := *spec
		edited.StackAlign = 64 + i
		pr := &corpus.Override{Provider: c, FuncName: fn.Name, Target: "ARM", Source: fn.Gen(&edited)}
		if _, err := NewStreamingPipeline(pr, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkModelTrainingEpoch measures one fine-tuning epoch.
func BenchmarkModelTrainingEpoch(b *testing.B) {
	f := sharedFixture(b)
	samples := trainSamples(f)
	cfg := f.p.Cfg.Model
	cfg.Vocab = f.p.Vocab.Size()
	m := model.NewTransformer(cfg)
	opt := model.TrainOptions{Epochs: 1, Batch: 16, LR: 3e-3, Seed: 9, Workers: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		model.Fit(m, samples, opt)
	}
	b.ReportMetric(float64(len(samples)), "samples/epoch")
}

func trainSamples(f *fixture) []model.Sample {
	// A small deterministic sample set drawn through the public encoder.
	var out []model.Sample
	g := f.p.GroupByName("getRelocType")
	for _, tgt := range g.Targets[:4] {
		out = append(out, model.Sample{
			Input:  f.p.Vocab.Encode([]string{"getRelocType", tgt}),
			Output: f.p.Vocab.Encode([]string{tgt}),
		})
	}
	return out
}

func runWorkload(b *testing.B, w bench.Workload, tb *compiler.Tables, opt int) sim.Result {
	b.Helper()
	obj, err := compiler.Compile(w.Program, tb, opt)
	if err != nil {
		b.Fatal(err)
	}
	vm, err := sim.New(obj, tb, sim.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	res, err := vm.Run(w.Entry, w.Args...)
	if err != nil {
		b.Fatal(err)
	}
	return res
}

func geomean(product float64, n int) float64 {
	if product <= 0 || n == 0 {
		return 0
	}
	return math.Pow(product, 1/float64(n))
}
