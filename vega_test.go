package vega

import (
	"testing"

	"vega/internal/corpus"
	"vega/internal/cpp"
	"vega/internal/generate"
)

func TestPublicAPIStageOne(t *testing.T) {
	c, err := BuildCorpus()
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Backends) < 15 {
		t.Fatalf("backends = %d", len(c.Backends))
	}
	p, err := NewPipeline(c, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Groups) < 40 {
		t.Fatalf("groups = %d", len(p.Groups))
	}
	for _, tgt := range EvalTargets() {
		if corpus.FindTarget(tgt) == nil {
			t.Errorf("eval target %s missing from fleet", tgt)
		}
	}
}

func TestPublicEvaluate(t *testing.T) {
	c, err := BuildCorpus()
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPipeline(c, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Evaluate a perfect "generated" backend assembled from the reference.
	ref := c.Backends["RISCV"]
	gen := &generate.Backend{Target: "RISCV", Seconds: map[string]float64{}}
	for _, ifn := range corpus.AllFuncs() {
		fn, ok := ref.Funcs[ifn.Name]
		if !ok {
			continue
		}
		gf := &generate.Function{Name: ifn.Name, Module: string(ifn.Module), Target: "RISCV"}
		for i, st := range cpp.SplitFunction(fn) {
			gf.Statements = append(gf.Statements, generate.Statement{Row: i, Text: st.Text, Score: 1})
		}
		gen.Functions = append(gen.Functions, gf)
	}
	report := Evaluate(p, gen)
	tot := report.Totals()
	if tot.Accurate != tot.Funcs {
		t.Errorf("perfect backend scored %d/%d", tot.Accurate, tot.Funcs)
	}
}
