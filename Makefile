# Tier-1 verification targets. `make check` is what CI runs: lint (vet +
# gofmt) plus the full test suite under the race detector, which
# exercises the concurrent training/cancellation paths and Stage 3's
# generation worker pool.

GO ?= go

.PHONY: check lint vet fmt-check test test-race obs-race kernels-race \
	attn-race quant-race stage1-race corpus-race serve-race repair-race \
	build bench bench-stage1 bench-stage2 bench-stage3 bench-repair

check: lint obs-race kernels-race attn-race quant-race stage1-race corpus-race serve-race repair-race test-race

build:
	$(GO) build ./...

lint: vet fmt-check

vet:
	$(GO) vet ./...

# gofmt -l lists unformatted files; fail the build when any exist.
fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

test:
	$(GO) test ./...

test-race:
	$(GO) test -race -timeout 45m ./...

# Fast, focused race check on the observability layer: its counters and
# span emission are exercised from every worker goroutine, so this suite
# fails first (and in seconds) when an instrument loses atomicity.
obs-race:
	$(GO) test -race ./internal/obs

# Kernel differential suite under the race detector: the blocked/SIMD
# kernels against their naive references across worker counts, plus the
# batched-vs-per-sample training differentials. Fails fast when a kernel
# change breaks bit-identity or the parallel dispatch races.
kernels-race:
	$(GO) test -race ./internal/tensor
	$(GO) test -race -run 'LossBatch|FitWorkersDeterministic|Kernel' ./internal/model

# Attention-kernel suite under the race detector: the head-contiguous
# score/weighted-sum kernels against their naive and strided (full-width
# DotColumns/MulRowInto) references in tensor, plus the model layer's
# layout differentials — grow-at-MaxSeq boundary, cloneKV headroom under
# mid-growth beam branching, and decode bit-identity across kernel
# worker counts. Fails fast when a layout or kernel change breaks the
# bit-exact seam.
attn-race:
	$(GO) test -race -run 'Attn' ./internal/tensor
	$(GO) test -race -run 'KVGrow|CloneKV|CloneQuantized|KernelWorkerBit|IncrementalDecoderClone|CachedMatchesUncached' ./internal/model

# Int8 quantization suite under the race detector: the quantize/int8
# matmul differentials and their worker-count bit-identity in tensor,
# plus the model layer's quantized-view build (sync.Once under
# concurrent decoders) and batched-encoder worker differentials. Fails
# fast when the scale-once contract or the lazy view construction races.
quant-race:
	$(GO) test -race -run 'Quant|Int8|Scratch' ./internal/tensor
	$(GO) test -race -run 'Quant|EncodeBatch|DecoderFromMemory' ./internal/model

# Stage 1 concurrency suite under the race detector: the per-group
# artifact cache round-trips, the worker-count differential
# (Stage1Workers 1/3/8 must serialize byte-identically), and the
# incremental-invalidation differential (one edited target misses
# exactly one group at every worker count) — all of which drive the
# templatization pool, the per-group cache, and the shared
# extractor/source-tree memos from many goroutines.
stage1-race:
	$(GO) test -race ./internal/s1cache
	$(GO) test -race -run 'Stage1Workers|Stage1Cache|Stage1Incremental|StreamingProvider' ./internal/core

# Corpus-scale race check: the 50+-target extended fleet built and
# self-evaluated under the race detector (streaming providers memoize
# reference backends behind a mutex; this drives that path), plus the
# lazily built function-name index hit from concurrent lookups.
corpus-race:
	$(GO) test -race -run 'ExtendedFleet|FamilyTargets' ./internal/eval
	$(GO) test -race -run 'FuncByName' ./internal/corpus

# Serving-layer race suite: the bounded scheduler, snapshot refcount
# swap, and HTTP handlers driven concurrently — including the soak test
# (queue cap 2, mid-run hot swap, armed serve-handler-panic fault) that
# enforces the {200, 200-degraded, 429, 504} response contract.
serve-race:
	$(GO) test -race ./internal/serve

# Verify-and-repair race suite: the CEGAR engine and oracle (shared by
# every generation worker) plus the interp↔sim differential fuzz, whose
# seeds run across goroutines precisely so the race detector watches the
# compiler tables and both executors being shared.
repair-race:
	$(GO) test -race ./internal/repair
	$(GO) test -race -run 'DifferentialInterpVsSim' ./internal/sim

# Stage-timing benchmarks, each teed through cmd/benchjson so the run
# leaves a machine-readable artifact beside the log.
bench: bench-stage1 bench-stage2 bench-stage3 bench-repair

# One invocation covers all three Stage 1 variants: cold (full
# templatization + feature mining), warm (every group a per-group cache
# hit), and warm-one-target-dirty (one edited implementation; exactly
# one group rebuilds). benchjson derives speedup_vs_cold for both warm
# rows in BENCH_stage1.json.
bench-stage1:
	$(GO) test -run '^$$' -bench 'Stage1Templatization' -benchmem -benchtime 3x . \
		| $(GO) run ./cmd/benchjson -out BENCH_stage1.json

bench-stage2:
	$(GO) test -run '^$$' -bench 'Fig6TrainingTime' -benchmem -benchtime 1x . \
		| $(GO) run ./cmd/benchjson -out BENCH_stage2.json

bench-stage3:
	$(GO) test -run '^$$' -bench 'Fig7InferenceTime' -benchmem -benchtime 1x . \
		| $(GO) run ./cmd/benchjson -out BENCH_stage3.json

# Verify-and-repair loop: plain vs verified pass@1 and the repair rate,
# recorded as BENCH_repair.json (the correctness-loop delta artifact).
bench-repair:
	$(GO) test -run '^$$' -bench 'RepairLoop' -benchmem -benchtime 1x . \
		| $(GO) run ./cmd/benchjson -out BENCH_repair.json
