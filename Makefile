# Tier-1 verification targets. `make check` is what CI runs: lint (vet +
# gofmt) plus the full test suite under the race detector, which
# exercises the concurrent training/cancellation paths and Stage 3's
# generation worker pool.

GO ?= go

.PHONY: check lint vet fmt-check test test-race obs-race build bench

check: lint obs-race test-race

build:
	$(GO) build ./...

lint: vet fmt-check

vet:
	$(GO) vet ./...

# gofmt -l lists unformatted files; fail the build when any exist.
fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

test:
	$(GO) test ./...

test-race:
	$(GO) test -race -timeout 45m ./...

# Fast, focused race check on the observability layer: its counters and
# span emission are exercised from every worker goroutine, so this suite
# fails first (and in seconds) when an instrument loses atomicity.
obs-race:
	$(GO) test -race ./internal/obs

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .
