# Tier-1 verification targets. `make check` is what CI runs: vet plus
# the full test suite under the race detector, which exercises the
# concurrent training/cancellation paths added by the fault-tolerance
# layer.

GO ?= go

.PHONY: check vet test test-race build bench

check: vet test-race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race -timeout 45m ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .
