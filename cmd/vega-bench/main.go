// Command vega-bench regenerates every table and figure of the paper's
// evaluation section (see DESIGN.md's per-experiment index):
//
//	fig7             inference time per module per target
//	fig8             function accuracy (pass@1), confidence split, multi-source share
//	fig9             statement accuracy, VEGA vs ForkFlow
//	table2           error taxonomy (Err-V / Err-CS / Err-Def)
//	table3           accurate vs manual-effort statement counts
//	table4           estimated manual correction hours
//	fig10            backend performance, base vs corrected-VEGA, O3/O0
//	training         training/verification split statistics
//	forkflow         the fork-flow baseline's accuracy
//	ablation-split   function-group vs backend-based data split
//	ablation-model   transformer vs GRU vs BERT-style generation
//	ablation-pretrain with vs without the pre-training pass
//	all              everything above with one shared trained model
//
// Usage: vega-bench -exp all [-epochs 18] [-samples 2600] [-seed 1] [-fast]
package main

import (
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"strings"
	"time"

	"vega/internal/core"
	"vega/internal/corpus"
	"vega/internal/eval"
	"vega/internal/generate"
	"vega/internal/obs"
	"vega/internal/template"
)

var (
	expFlag   = flag.String("exp", "all", "experiment to run")
	epochs    = flag.Int("epochs", 26, "fine-tuning epochs")
	samples   = flag.Int("samples", 2600, "max training samples")
	seed      = flag.Int64("seed", 1, "random seed")
	fast      = flag.Bool("fast", false, "reduced budgets everywhere (smoke run)")
	quiet     = flag.Bool("quiet", false, "suppress epoch logs")
	workers   = flag.Int("workers", 0, "parallel generation workers (0 = NumCPU); output is identical for any count")
	kworkers  = flag.Int("kernel-workers", 0, "goroutines per large matmul kernel (0 = GOMAXPROCS); results are identical for any count")
	s1workers = flag.Int("stage1-workers", 0, "parallel templatization workers (0 = NumCPU); output is identical for any count")
	s1dir     = flag.String("stage1-cache", "", "directory for the content-addressed Stage 1 artifact cache (empty = disabled)")
	metrics   = flag.String("metrics", "", "write stage spans and a metric snapshot to this JSON-lines file")
	pprofAt   = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
)

func main() {
	flag.Parse()
	// The harness always records into an in-memory sink — fig7 prints
	// its timing rows from there — and tees to a JSONL file on -metrics.
	mem := &obs.MemSink{}
	sinks := []obs.Sink{mem}
	if *metrics != "" {
		jl, err := obs.NewJSONLSink(*metrics)
		check(err)
		sinks = append(sinks, jl)
	}
	o := obs.New(obs.Multi(sinks...))
	defer o.Close()
	if *pprofAt != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAt, nil); err != nil {
				fmt.Fprintln(os.Stderr, "vega-bench: pprof:", err)
			}
		}()
		fmt.Printf("pprof: http://%s/debug/pprof/\n", *pprofAt)
	}
	h := &harness{start: time.Now(), obs: o, mem: mem}
	exps := map[string]func(*harness){
		"fig6":              runFig6,
		"fig7":              runFig7,
		"fig8":              runFig8,
		"fig9":              runFig9,
		"table2":            runTable2,
		"table3":            runTable3,
		"table4":            runTable4,
		"fig10":             runFig10,
		"training":          runTraining,
		"forkflow":          runForkFlow,
		"ablation-split":    runAblationSplit,
		"ablation-model":    runAblationModel,
		"ablation-pretrain": runAblationPretrain,
	}
	if *expFlag == "all" {
		for _, name := range []string{
			"fig6", "training", "fig7", "fig8", "table2", "fig9", "table3",
			"table4", "fig10", "forkflow",
			"ablation-split", "ablation-model", "ablation-pretrain",
		} {
			exps[name](h)
		}
		fmt.Printf("\nall experiments in %s\n", time.Since(h.start).Round(time.Second))
		return
	}
	run, ok := exps[*expFlag]
	if !ok {
		fmt.Fprintf(os.Stderr, "vega-bench: unknown experiment %q\n", *expFlag)
		os.Exit(2)
	}
	run(h)
}

// harness lazily builds and caches the expensive shared state.
type harness struct {
	start     time.Time
	obs       *obs.Obs
	mem       *obs.MemSink
	c         *corpus.Corpus
	p         *core.Pipeline
	trainRes  *core.TrainResult
	gens      map[string]*generate.Backend
	evals     map[string]*eval.BackendEval
	templates map[string]*template.FunctionTemplate
}

// moduleSeconds reads one Fig. 7 cell from the metrics sink: the
// gen.seconds.<target>.<module> counter the Stage 3 worker pool
// aggregates its per-function decode durations into.
func (h *harness) moduleSeconds(target, module string) (float64, bool) {
	h.obs.Flush()
	m, ok := h.mem.Metric("gen.seconds." + target + "." + module)
	return m.Value, ok
}

func (h *harness) corpus() *corpus.Corpus {
	if h.c == nil {
		c, err := corpus.Build()
		check(err)
		h.c = c
	}
	return h.c
}

func (h *harness) config() core.Config {
	cfg := core.DefaultConfig()
	cfg.Seed = *seed
	cfg.Train.Epochs = *epochs
	cfg.MaxSamples = *samples
	cfg.Workers = *workers
	cfg.KernelWorkers = *kworkers
	cfg.Stage1Workers = *s1workers
	cfg.Stage1Cache = *s1dir
	cfg.Obs = h.obs
	if *fast {
		cfg.Train.Epochs = 3
		cfg.MaxSamples = 600
		cfg.PretrainEpochs = 1
		cfg.VerifyCap = 80
	}
	if !*quiet {
		cfg.Train.Verbose = func(e int, l float64) {
			fmt.Printf("    epoch %2d  loss %.4f  (%s)\n", e, l, time.Since(h.start).Round(time.Second))
		}
	}
	return cfg
}

func (h *harness) pipeline() *core.Pipeline {
	if h.p == nil {
		fmt.Println("# training CodeBE (shared by all experiments)")
		p, err := core.New(h.corpus(), h.config())
		check(err)
		res, err := p.Train()
		check(err)
		h.p, h.trainRes = p, res
		h.templates = map[string]*template.FunctionTemplate{}
		for _, g := range p.Groups {
			h.templates[g.Func.Name] = g.FT
		}
		fmt.Printf("# trained: %d samples, vocab %d, verification EM %.1f%%\n",
			res.Samples, res.VocabSize, 100*res.VerifyExactMatch)
		if res.RetriedEpochs > 0 || res.SkippedSamples > 0 {
			fmt.Printf("# resilience: %d epoch(s) retried, %d sample(s) skipped\n",
				res.RetriedEpochs, res.SkippedSamples)
		}
		fmt.Println()
	}
	return h.p
}

func (h *harness) backend(target string) *generate.Backend {
	if h.gens == nil {
		h.gens = map[string]*generate.Backend{}
	}
	if b, ok := h.gens[target]; ok {
		return b
	}
	b := h.pipeline().GenerateBackend(target)
	if b.Recovered > 0 || b.Partial {
		fmt.Printf("# %s: %d function(s) recovered from crashes, partial=%v\n",
			target, b.Recovered, b.Partial)
	}
	h.gens[target] = b
	return b
}

func (h *harness) evalOf(target string) *eval.BackendEval {
	if h.evals == nil {
		h.evals = map[string]*eval.BackendEval{}
	}
	if e, ok := h.evals[target]; ok {
		return e
	}
	h.pipeline()
	e := eval.EvaluateBackend(h.backend(target), h.corpus().Backends[target], h.templates)
	h.evals[target] = e
	return e
}

func evalTargetNames() []string { return []string{"RISCV", "RI5CY", "XCore"} }

// paperName maps fleet names to the paper's spellings for display.
func paperName(t string) string {
	if t == "XCore" {
		return "xCORE"
	}
	return t
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "vega-bench:", err)
		os.Exit(1)
	}
}

func header(s string) {
	fmt.Println()
	fmt.Println("== " + s + " " + strings.Repeat("=", max(0, 66-len(s))))
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
