package main

import (
	"fmt"
	"math"
	"strings"

	"vega/internal/core"
	"vega/internal/corpus"
	"vega/internal/eval"
	"vega/internal/forkflow"
)

// runTraining reports the §4.1.2 statistics: dataset sizes, the 75/25
// split, and the verification-set exact match (the paper reports 99.03%).
func runTraining(h *harness) {
	header("§4.1.2 training setup")
	p := h.pipeline()
	st := p.Stats()
	fmt.Printf("function groups:        %d   (paper: 825)\n", st.Groups)
	fmt.Printf("training functions:     %d   (paper: 7,902)\n", st.TrainFunctions)
	fmt.Printf("verification functions: %d   (paper: 3,338)\n", st.VerifyFunctions)
	fmt.Printf("training statements:    %d   (paper: 107,718)\n", st.TrainStatements)
	fmt.Printf("mined properties:       %d   (paper: 345)\n", st.Properties)
	fmt.Printf("verification exact match: %.2f%%  (paper: 99.03%%)\n", 100*h.trainRes.VerifyExactMatch)
}

// runFig7 prints per-module generation times for the three targets. The
// rows are read from the metrics sink (the gen.seconds.<target>.<module>
// counters Stage 3's worker pool emits), not from ad-hoc time.Since
// bookkeeping — and each cell is asserted against Backend.Seconds so the
// two instrumentations can never silently drift apart.
func runFig7(h *harness) {
	header("Fig. 7: inference times per function module (seconds)")
	fmt.Printf("%-8s", "")
	for _, m := range corpus.Modules {
		fmt.Printf("%8s", m)
	}
	fmt.Printf("%10s\n", "total")
	for _, tgt := range evalTargetNames() {
		b := h.backend(tgt) // ensures Stage 3 ran and its metrics recorded
		fmt.Printf("%-8s", paperName(tgt))
		total := 0.0
		for _, m := range corpus.Modules {
			sec, ok := b.Seconds[string(m)]
			if !ok {
				fmt.Printf("%8s", "-")
				continue
			}
			mSec, mok := h.moduleSeconds(tgt, string(m))
			if sec > 0 && (!mok || math.Abs(mSec-sec) > 1e-6*(1+sec)) {
				check(fmt.Errorf("fig7: %s/%s: metrics sink says %.6fs (found=%v), Backend.Seconds says %.6fs",
					tgt, m, mSec, mok, sec))
			}
			if mok {
				sec = mSec
			}
			total += sec
			fmt.Printf("%8.1f", sec)
		}
		fmt.Printf("%10.1f\n", total)
	}
	fmt.Println("(rows from the metrics sink: gen.seconds.<target>.<module>;")
	fmt.Println(" paper: 1,383s RISC-V, 1,664s RI5CY, 424s xCORE — GPU inference;")
	fmt.Println(" the shape to hold is per-module proportionality, all under an hour)")
}

// runFig8 prints function-level pass@1 accuracy per module with the
// confidence split and the multi-source share.
func runFig8(h *harness) {
	header("Fig. 8: function accuracy by module (pass@1)")
	for _, tgt := range evalTargetNames() {
		be := h.evalOf(tgt)
		fmt.Printf("%s:\n", paperName(tgt))
		fmt.Printf("  %-4s %9s %9s %10s %12s\n", "mod", "accurate", "conf≈1.0", "conf<1.0", "multi-src")
		for _, m := range be.ByModule() {
			fmt.Printf("  %-4s %4d/%-4d %9d %10d %12d\n",
				m.Module, m.Accurate, m.Funcs, m.HighConf, m.MidConf, m.MultiSource)
		}
		tot := be.Totals()
		fmt.Printf("  ALL  %4d/%-4d  -> %.1f%% of all functions; %.1f%% module average\n",
			tot.Accurate, tot.Funcs, 100*tot.FunctionAccuracy(), 100*be.ModuleAverageAccuracy())
	}
	fmt.Println("(paper: 71.5% RISC-V, 73.2% RI5CY, 62.2% xCORE over all functions)")
}

// runTable2 prints the error taxonomy.
func runTable2(h *harness) {
	header("Table 2: sources of inaccurate statements")
	fmt.Printf("%-10s %8s %8s %8s\n", "error", "RISC-V", "RI5CY", "xCORE")
	shares := map[string][3]float64{}
	for i, tgt := range evalTargetNames() {
		v, cs, def := h.evalOf(tgt).ErrorShare()
		for name, val := range map[string]float64{"Err-V": v, "Err-CS": cs, "Err-Def": def} {
			arr := shares[name]
			arr[i] = val
			shares[name] = arr
		}
	}
	for _, name := range []string{"Err-V", "Err-CS", "Err-Def"} {
		arr := shares[name]
		fmt.Printf("%-10s %7.1f%% %7.1f%% %7.1f%%\n", name, 100*arr[0], 100*arr[1], 100*arr[2])
	}
	fmt.Println("(paper: Err-V 3.9/3.0/1.1, Err-CS 11.6/10.6/10.1, Err-Def 23.9/22.9/37.2;")
	fmt.Println(" the shape to hold: Err-Def dominates, Err-V is rarest)")
}

// runFig9 compares VEGA and ForkFlow at the statement level.
func runFig9(h *harness) {
	header("Fig. 9: statement-level accuracy, VEGA vs ForkFlow")
	c := h.corpus()
	for _, tgt := range evalTargetNames() {
		vega := h.evalOf(tgt).ByModule()
		ffBackend := forkflow.Fork(c, forkflow.DefaultDonor, tgt)
		ff := eval.EvaluateBackend(ffBackend, c.Backends[tgt], nil).ByModule()
		ffBy := map[string]eval.ModuleStats{}
		for _, m := range ff {
			ffBy[m.Module] = m
		}
		fmt.Printf("%s:\n  %-4s %12s %12s\n", paperName(tgt), "mod", "VEGA", "ForkFlow")
		var vAcc, vTot, fAcc int
		for _, m := range vega {
			f := ffBy[m.Module]
			fmt.Printf("  %-4s %6.1f%%      %6.1f%%\n",
				m.Module, 100*m.StatementAccuracy(), 100*f.StatementAccuracy())
			vAcc += m.AccurateStatements
			vTot += m.RefStatements
			fAcc += f.AccurateStatements
		}
		fmt.Printf("  ALL  %6.1f%%      %6.1f%%\n",
			100*float64(vAcc)/float64(vTot), 100*float64(fAcc)/float64(vTot))
	}
	fmt.Println("(paper: VEGA 55.0/58.5/38.5% vs ForkFlow ~14%, >85% manual effort)")
}

// runTable3 prints accurate vs manual-effort statement counts.
func runTable3(h *harness) {
	header("Table 3: statements accurate vs requiring manual effort")
	fmt.Printf("%-5s", "mod")
	for _, tgt := range evalTargetNames() {
		fmt.Printf(" | %7s %7s", paperName(tgt), "")
	}
	fmt.Println()
	fmt.Printf("%-5s", "")
	for range evalTargetNames() {
		fmt.Printf(" | %7s %7s", "accur.", "manual")
	}
	fmt.Println()
	byMod := map[string]map[string]eval.ModuleStats{}
	for _, tgt := range evalTargetNames() {
		byMod[tgt] = map[string]eval.ModuleStats{}
		for _, m := range h.evalOf(tgt).ByModule() {
			byMod[tgt][m.Module] = m
		}
	}
	for _, mod := range corpus.Modules {
		fmt.Printf("%-5s", mod)
		for _, tgt := range evalTargetNames() {
			if m, ok := byMod[tgt][string(mod)]; ok {
				fmt.Printf(" | %7d %7d", m.AccurateStatements, m.ManualEffort)
			} else {
				fmt.Printf(" | %7s %7s", "-", "-")
			}
		}
		fmt.Println()
	}
	fmt.Printf("%-5s", "ALL")
	for _, tgt := range evalTargetNames() {
		tot := h.evalOf(tgt).Totals()
		fmt.Printf(" | %7d %7d", tot.AccurateStatements, tot.ManualEffort)
	}
	fmt.Println()
	fmt.Println("(paper RISC-V: 5,524 accurate / 7,223 manual across 12,747 statements)")
}

// runTable4 prints the estimated correction hours.
func runTable4(h *harness) {
	header("Table 4: estimated manual correction effort (hours, RISC-V)")
	mods := h.evalOf("RISCV").ByModule()
	ha := eval.DeveloperA.Hours(mods)
	hb := eval.DeveloperB.Hours(mods)
	fmt.Printf("%-5s %12s %12s\n", "mod", "developer A", "developer B")
	for _, m := range mods {
		fmt.Printf("%-5s %12.2f %12.2f\n", m.Module, ha[m.Module], hb[m.Module])
	}
	fmt.Printf("%-5s %12.2f %12.2f\n", "ALL",
		eval.DeveloperA.TotalHours(mods), eval.DeveloperB.TotalHours(mods))
	fmt.Println("(simulated from manual-statement counts at the paper's calibrated rate;")
	fmt.Println(" paper: 42.54h / 48.12h for the full-scale RISC-V backend)")
}

// runForkFlow prints the baseline comparison (§4.2).
func runForkFlow(h *harness) {
	header("ForkFlow baseline: function accuracy (pass@1)")
	c := h.corpus()
	fmt.Printf("%-8s %14s %14s\n", "target", "ForkFlow", "VEGA")
	for _, tgt := range evalTargetNames() {
		ff := eval.EvaluateBackend(forkflow.Fork(c, forkflow.DefaultDonor, tgt), c.Backends[tgt], nil)
		ft, vt := ff.Totals(), h.evalOf(tgt).Totals()
		fmt.Printf("%-8s %6d/%-3d %.1f%% %6d/%-3d %.1f%%\n",
			paperName(tgt), ft.Accurate, ft.Funcs, 100*ft.FunctionAccuracy(),
			vt.Accurate, vt.Funcs, 100*vt.FunctionAccuracy())
	}
	fmt.Println("(paper: ForkFlow 7.9/6.7/2.1% vs VEGA 71.5/73.2/62.2%)")
}

// ablationRun trains a fresh pipeline under a modified config and reports
// overall accuracy on the three targets.
func (h *harness) ablationRun(label string, mutate func(*core.Config)) [3]float64 {
	cfg := h.config()
	cfg.Train.Verbose = nil
	// Ablation pipelines must not pollute the shared per-target timing
	// counters fig7 asserts against, so they run unobserved.
	cfg.Obs = nil
	// Ablations run at a reduced budget: relative ordering is the result.
	if !*fast {
		cfg.Train.Epochs = max(4, *epochs/3)
		cfg.MaxSamples = 1200
		cfg.PretrainEpochs = 1
		cfg.VerifyCap = 60
	}
	mutate(&cfg)
	p, err := core.New(h.corpus(), cfg)
	check(err)
	_, err = p.Train()
	check(err)
	var out [3]float64
	for i, tgt := range evalTargetNames() {
		be := eval.EvaluateBackend(p.GenerateBackend(tgt), h.corpus().Backends[tgt], nil)
		out[i] = be.Totals().FunctionAccuracy()
	}
	fmt.Printf("  %-28s %6.1f%% %6.1f%% %6.1f%%\n", label, 100*out[0], 100*out[1], 100*out[2])
	return out
}

// runAblationSplit compares the function-group split with the
// backend-based split (§4.2's alternative).
func runAblationSplit(h *harness) {
	header("Ablation (§4.2): training-set split policy — accuracy per target")
	fmt.Printf("  %-28s %7s %7s %7s\n", "", "RISC-V", "RI5CY", "xCORE")
	a := h.ablationRun("function-group split", func(cfg *core.Config) {})
	b := h.ablationRun("backend-based split", func(cfg *core.Config) { cfg.SplitByBackend = true })
	fmt.Printf("  drop: %.1f / %.1f / %.1f points (paper: 26.2 / 25.2 / 11.1)\n",
		100*(a[0]-b[0]), 100*(a[1]-b[1]), 100*(a[2]-b[2]))
}

// runAblationModel compares the three architectures (§4.1.2's RNN and
// vanilla-BERT baselines).
func runAblationModel(h *harness) {
	header("Ablation (§4.1.2): model architecture — accuracy per target")
	fmt.Printf("  %-28s %7s %7s %7s\n", "", "RISC-V", "RI5CY", "xCORE")
	tr := h.ablationRun("transformer (CodeBE)", func(cfg *core.Config) {})
	gr := h.ablationRun("GRU seq2seq (RNN VEGA)", func(cfg *core.Config) {
		cfg.Arch = "gru"
		cfg.MaxSamples = 500 // the recurrent baseline trains far slower
		cfg.Pretrain = false
	})
	bt := h.ablationRun("BERT-style encoder-only", func(cfg *core.Config) { cfg.Arch = "bert" })
	fmt.Printf("  transformer lead over RNN:  %.1f / %.1f / %.1f points (paper: 35.3-77.7)\n",
		100*(tr[0]-gr[0]), 100*(tr[1]-gr[1]), 100*(tr[2]-gr[2]))
	fmt.Printf("  transformer lead over BERT: %.1f / %.1f / %.1f points (paper: 32.1-67.0)\n",
		100*(tr[0]-bt[0]), 100*(tr[1]-bt[1]), 100*(tr[2]-bt[2]))
}

// runAblationPretrain compares fine-tuning with and without the
// pre-training pass (the §4.1.6 control).
func runAblationPretrain(h *harness) {
	header("Ablation (§4.1.6): pre-training pass — accuracy per target")
	fmt.Printf("  %-28s %7s %7s %7s\n", "", "RISC-V", "RI5CY", "xCORE")
	with := h.ablationRun("with pre-training", func(cfg *core.Config) {})
	without := h.ablationRun("without pre-training", func(cfg *core.Config) { cfg.Pretrain = false })
	fmt.Printf("  pre-training contribution: %.1f / %.1f / %.1f points\n",
		100*(with[0]-without[0]), 100*(with[1]-without[1]), 100*(with[2]-without[2]))
}

// runFig6 prints the target-processor overview (Fig. 6's table).
func runFig6(h *harness) {
	header("Fig. 6: evaluation targets")
	fmt.Printf("%-8s %-10s %6s %8s %7s %s\n", "target", "class", "regs", "ptrbits", "fixups", "custom ISA")
	for _, tgt := range evalTargetNames() {
		t := corpus.FindTarget(tgt)
		class := map[string]string{"RISCV": "GPP", "RI5CY": "ULP", "XCore": "IoT"}[tgt]
		var custom []string
		if t.HasHardwareLoop {
			custom = append(custom, "hardware loop")
		}
		if t.HasSIMD {
			custom = append(custom, "SIMD")
		}
		if t.HasRealtime {
			custom = append(custom, "real-time I/O + thread sync")
		}
		if !t.HasDisassembler {
			custom = append(custom, "no disassembler module")
		}
		if len(custom) == 0 {
			custom = append(custom, "-")
		}
		fmt.Printf("%-8s %-10s %6d %8d %7d %s\n",
			paperName(tgt), class, t.NumRegs, t.PtrBits, len(t.FixupKinds), strings.Join(custom, ", "))
	}
}
