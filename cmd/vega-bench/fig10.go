package main

import (
	"fmt"
	"math"

	"vega/internal/bench"
	"vega/internal/compiler"
	"vega/internal/corpus"
	"vega/internal/cpp"
	"vega/internal/eval"
	"vega/internal/sim"
)

// runFig10 regenerates the backend-performance figure: for each target,
// compile its suite with the base compiler and with the corrected
// VEGA-generated backend, at -O0 and -O3, and report speedups. The paper's
// claim — the corrected backend matches the base compiler — shows up as
// identical cycle counts.
func runFig10(h *harness) {
	header("Fig. 10: backend performance (speedup -O3 over -O0)")
	c := h.corpus()
	for _, tgt := range evalTargetNames() {
		ref := c.Backends[tgt]
		spec := corpus.FindTarget(tgt)

		// Correct the generated backend: accurate functions from VEGA,
		// the base compiler's for the rest (§4.3's methodology).
		be := h.evalOf(tgt)
		gen := h.backend(tgt)
		corrected := map[string]*cpp.Node{}
		fromVega := 0
		for _, r := range be.Results {
			fn := ref.Funcs[r.Name]
			if r.Accurate && r.Emitted {
				if gf := gen.Function(r.Name); gf != nil {
					if parsed, err := gf.Parse(); err == nil {
						cpp.Normalize(parsed)
						fn = parsed
						fromVega++
					}
				}
			}
			if fn != nil {
				corrected[r.Name] = fn
			}
		}

		// Both compilers interrogate their backend's interface functions:
		// the base compiler the reference implementations, the VEGA
		// compiler the corrected generated ones.
		u := eval.NewUniverse(ref)
		vegaTables, err := compiler.TablesFromBackend(spec, corrected, u.Env(0))
		check(err)
		baseTables, err := compiler.TablesFromBackend(spec, ref.Funcs, eval.NewUniverse(ref).Env(0))
		check(err)

		suite := bench.SuiteFor(tgt)
		fmt.Printf("\n%s (%d benchmarks, %d/%d functions straight from VEGA):\n",
			paperName(tgt), len(suite), fromVega, len(corrected))
		fmt.Printf("  %-18s %10s %10s %9s %9s\n", "benchmark", "O0 cycles", "O3 cycles", "base", "VEGA")
		shown := 0
		var geoBase, geoVega float64 = 1, 1
		matched := true
		for _, w := range suite {
			b0 := mustRun(w, baseTables, 0)
			b3 := mustRun(w, baseTables, 3)
			v3 := mustRun(w, vegaTables, 3)
			v0 := mustRun(w, vegaTables, 0)
			if b3.Return != v3.Return || b0.Return != b3.Return {
				fmt.Printf("  %-18s FUNCTIONAL MISMATCH\n", w.Name)
				matched = false
				continue
			}
			sb := float64(b0.Cycles) / float64(b3.Cycles)
			sv := float64(v0.Cycles) / float64(v3.Cycles)
			geoBase *= sb
			geoVega *= sv
			if shown < 6 || shown == len(suite)-1 {
				fmt.Printf("  %-18s %10d %10d %8.2fx %8.2fx\n", w.Name, b0.Cycles, b3.Cycles, sb, sv)
			} else if shown == 6 {
				fmt.Printf("  %-18s\n", "...")
			}
			shown++
		}
		n := float64(len(suite))
		fmt.Printf("  geomean speedup: base %.2fx, corrected VEGA %.2fx", pow(geoBase, 1/n), pow(geoVega, 1/n))
		if matched {
			fmt.Printf("  (all results functionally identical)")
		}
		fmt.Println()
	}
	fmt.Println("\n(paper: the VEGA compilers' -O3/-O0 speedups track their base compilers)")
}

func mustRun(w bench.Workload, tb *compiler.Tables, opt int) sim.Result {
	obj, err := compiler.Compile(w.Program, tb, opt)
	check(err)
	vm, err := sim.New(obj, tb, sim.DefaultConfig())
	check(err)
	res, err := vm.Run(w.Entry, w.Args...)
	check(err)
	return res
}

func pow(x, e float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Pow(x, e)
}
