// Command vega drives the VEGA pipeline end to end: it builds the backend
// corpus, templatizes function groups, mines features, fine-tunes CodeBE,
// and generates a complete compiler backend for a held-out target from its
// target description files, annotating every statement with a confidence
// score.
//
// Usage:
//
//	vega -target RISCV [-epochs 14] [-samples 2600] [-arch transformer]
//	     [-out generated/] [-seed 1] [-quiet] [-timeout 10m] [-verify]
//	     [-quantize] [-beam-escalate]
//	     [-metrics out.jsonl] [-pprof localhost:6060]
//
// The run honors a deadline (-timeout) and Ctrl-C: a canceled training
// run reports the epochs that finished; a canceled generation run still
// writes the functions generated so far, marked partial. Fault-injection
// points for exercising these paths are armed via VEGA_FAULTS (see
// README.md).
//
// -verify closes the correctness loop: every generated function is
// executed against the held-out reference through the regression
// harness, and diverging functions get up to -repair-rounds rounds of
// counterexample-guided re-decoding (see DESIGN.md "Verified generation
// & repair"). The run then reports verified pass@1 beside the plain
// textual pass@1.
//
// Observability: -metrics streams every stage span and a final metric
// snapshot to a JSON-lines file (see DESIGN.md "Observability");
// -pprof serves net/http/pprof on the given address for live CPU/heap
// profiling of a long run.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"vega/internal/core"
	"vega/internal/corpus"
	"vega/internal/eval"
	"vega/internal/obs"
	"vega/internal/template"
)

func main() {
	var (
		target    = flag.String("target", "RISCV", "held-out target to generate (RISCV, RI5CY, XCore)")
		epochs    = flag.Int("epochs", 14, "fine-tuning epochs")
		samples   = flag.Int("samples", 2600, "max deduplicated training samples")
		arch      = flag.String("arch", "transformer", "model architecture: transformer, gru, bert")
		outDir    = flag.String("out", "", "directory to write generated functions into")
		seed      = flag.Int64("seed", 1, "random seed")
		quiet     = flag.Bool("quiet", false, "suppress per-epoch logs")
		evaluap   = flag.Bool("eval", true, "run pass@1 evaluation against the reference backend")
		saveCk    = flag.String("save", "", "write a model checkpoint after training")
		loadCk    = flag.String("load", "", "load a model checkpoint instead of training")
		timeout   = flag.Duration("timeout", 0, "overall deadline for the run (0 = none)")
		workers   = flag.Int("workers", 0, "parallel generation workers (0 = NumCPU); output is identical for any count")
		kworkers  = flag.Int("kernel-workers", 0, "goroutines per large matmul kernel (0 = GOMAXPROCS); results are identical for any count")
		s1workers = flag.Int("stage1-workers", 0, "parallel templatization workers (0 = NumCPU); output is identical for any count")
		s1cache   = flag.String("stage1-cache", "", "directory for the per-group content-addressed Stage 1 cache (empty = disabled)")
		fleetName = flag.String("targets", "standard", "target fleet: standard, or extended (adds the VLIW, predicated, tensor, and RISC-V-extension families)")
		metrics   = flag.String("metrics", "", "write stage spans and a metric snapshot to this JSON-lines file")
		pprofAt   = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
		verify    = flag.Bool("verify", false, "execute generated functions against the reference and repair divergences (CEGAR)")
		repRounds = flag.Int("repair-rounds", 0, "max counterexample-guided repair rounds per function (0 = default 3; needs -verify)")
		quantize  = flag.Bool("quantize", false, "decode through int8 quantized weights (identical output; ambiguous rows re-decode float32)")
		beamEsc   = flag.Bool("beam-escalate", false, "greedy-first beam decoding: re-decode with the beam only below the confidence threshold")
	)
	flag.Parse()

	fleet, err := corpus.Fleet(*fleetName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vega:", err)
		os.Exit(2)
	}
	if corpus.FindIn(fleet, *target) == nil {
		fmt.Fprintf(os.Stderr, "vega: unknown target %q in fleet %q\n", *target, *fleetName)
		os.Exit(2)
	}

	var o *obs.Obs
	if *metrics != "" {
		sink, err := obs.NewJSONLSink(*metrics)
		check(err)
		sink.FlushEvery(2 * time.Second)
		o = obs.New(sink)
		stopFlush := o.FlushEvery(10 * time.Second)
		// check() exits through os.Exit, which skips defers — register
		// the flush/close so metrics survive error exits too.
		obsCleanup = func() {
			stopFlush()
			o.Close()
		}
		defer obsCleanup()
	}
	if *pprofAt != "" {
		go func() {
			// DefaultServeMux carries the net/http/pprof handlers.
			if err := http.ListenAndServe(*pprofAt, nil); err != nil {
				fmt.Fprintln(os.Stderr, "vega: pprof:", err)
			}
		}()
		fmt.Printf("pprof: http://%s/debug/pprof/\n", *pprofAt)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		// On SIGTERM/Ctrl-C, push a metric snapshot immediately: the
		// pipeline may take a while to observe the cancellation, and the
		// operator wants the telemetry now.
		<-ctx.Done()
		o.Flush()
	}()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	start := time.Now()
	// The standard fleet stays resident (backends parsed once, shared by
	// every stage); extended fleets stream — function groups are rendered
	// on demand so memory stays bounded by one group at 50+ targets.
	var provider corpus.Provider
	if *fleetName == "standard" || *fleetName == "" {
		c, err := corpus.Build()
		check(err)
		provider = c
		fmt.Printf("corpus: %d backends, LLVM core + description files rendered\n", len(c.Backends))
	} else {
		provider = corpus.NewStream(fleet)
		fmt.Printf("corpus: streaming %d targets (%s fleet), groups rendered on demand\n", len(fleet), *fleetName)
	}

	cfg := core.DefaultConfig()
	cfg.Seed = *seed
	cfg.Train.Epochs = *epochs
	cfg.MaxSamples = *samples
	cfg.Arch = *arch
	cfg.Workers = *workers
	cfg.KernelWorkers = *kworkers
	cfg.Stage1Workers = *s1workers
	cfg.Stage1Cache = *s1cache
	cfg.Verify = *verify
	cfg.RepairRounds = *repRounds
	cfg.Quantize = *quantize
	cfg.BeamEscalate = *beamEsc
	cfg.Obs = o
	if !*quiet {
		cfg.Train.Verbose = func(e int, l float64) {
			fmt.Printf("  epoch %2d  loss %.4f  (%s)\n", e, l, time.Since(start).Round(time.Second))
		}
	}

	p, err := core.NewFromProvider(provider, cfg)
	check(err)
	st := p.Stats()
	fmt.Printf("stage 1: %d function groups templatized, %d properties mined, %d/%d train/verify functions\n",
		st.Groups, st.Properties, st.TrainFunctions, st.VerifyFunctions)

	if *loadCk != "" {
		check(p.Load(*loadCk))
		fmt.Printf("stage 2: loaded checkpoint %s\n", *loadCk)
	} else {
		res, err := p.TrainContext(ctx)
		if err != nil && res != nil && res.Canceled {
			fmt.Fprintf(os.Stderr, "vega: training stopped after %d epoch(s): %v\n",
				len(res.PretrainLosses)+len(res.EpochLosses), err)
			if obsCleanup != nil {
				obsCleanup()
			}
			os.Exit(1)
		}
		check(err)
		fmt.Printf("stage 2: %d samples, vocab %d, verification exact match %.1f%% (%s)\n",
			res.Samples, res.VocabSize, 100*res.VerifyExactMatch, time.Since(start).Round(time.Second))
		if res.RetriedEpochs > 0 || res.SkippedSamples > 0 {
			fmt.Printf("  resilience: %d epoch(s) retried, %d sample(s) skipped\n",
				res.RetriedEpochs, res.SkippedSamples)
		}
		if *saveCk != "" {
			check(p.Save(*saveCk))
			fmt.Printf("checkpoint written to %s\n", *saveCk)
		}
	}

	gen := p.GenerateBackendContext(ctx, *target)
	fmt.Printf("stage 3: %s\n", core.Describe(gen))
	if gen.Partial {
		fmt.Printf("  partial: generation stopped early; %d function(s) salvaged\n", len(gen.Functions))
	}
	if gen.Recovered > 0 {
		fmt.Printf("  resilience: %d function(s) recovered from crashes (flagged at confidence 0)\n", gen.Recovered)
	}
	if *verify {
		fmt.Printf("  verify: %d passed as generated, %d repaired, %d still diverging\n",
			gen.Verified-gen.Repaired, gen.Repaired, gen.RepairFailed)
	}
	for _, m := range corpus.Modules {
		if sec, ok := gen.Seconds[string(m)]; ok {
			fmt.Printf("  %s: %.1fs\n", m, sec)
		}
	}

	if *outDir != "" {
		check(os.MkdirAll(*outDir, 0o755))
		for _, f := range gen.Functions {
			path := filepath.Join(*outDir, fmt.Sprintf("%s_%s.cpp.txt", f.Module, f.Name))
			check(os.WriteFile(path, []byte(f.RenderAnnotated()), 0o644))
		}
		fmt.Printf("wrote %d annotated functions to %s\n", len(gen.Functions), *outDir)
	}

	if *evaluap {
		templates := map[string]*template.FunctionTemplate{}
		for _, g := range p.Groups {
			templates[g.Func.Name] = g.FT
		}
		ref, err := p.ReferenceBackend(*target)
		check(err)
		be := eval.EvaluateBackend(gen, ref, templates)
		tot := be.Totals()
		fmt.Printf("pass@1: %d/%d functions accurate (%.1f%%), %d/%d statements (%.1f%%)\n",
			tot.Accurate, tot.Funcs, 100*tot.FunctionAccuracy(),
			tot.AccurateStatements, tot.RefStatements, 100*tot.StatementAccuracy())
		for _, m := range be.ByModule() {
			fmt.Printf("  %-3s  %d/%d accurate  (%.0f%% statements)\n",
				m.Module, m.Accurate, m.Funcs, 100*m.StatementAccuracy())
		}
		if rs := be.Repair(); *verify && rs.Attempted > 0 {
			fmt.Printf("verified pass@1: %.1f%% (plain %.1f%%), repair rate %.1f%% over %d attempted\n",
				100*rs.VerifiedPass1(), 100*rs.PlainPass1(), 100*rs.RepairRate(), rs.Attempted)
		}
	}
	fmt.Printf("done in %s\n", time.Since(start).Round(time.Second))
}

// obsCleanup flushes and closes the metrics sink; set in main when
// -metrics is active so error exits (os.Exit skips defers) still flush.
var obsCleanup func()

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "vega:", err)
		if obsCleanup != nil {
			obsCleanup()
		}
		os.Exit(1)
	}
}
