// Command benchjson tees `go test -bench` output to stdout while parsing
// the benchmark result lines into a small JSON document, so `make bench`
// leaves machine-readable artifacts (BENCH_stage2.json, BENCH_stage3.json)
// next to the human-readable log. Standard library only.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// result is one parsed benchmark line.
type result struct {
	Name    string             `json:"name"`
	Iters   int64              `json:"iters"`
	NsPerOp float64            `json:"ns_per_op"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

type doc struct {
	Goos    string   `json:"goos,omitempty"`
	Goarch  string   `json:"goarch,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Pkg     string   `json:"pkg,omitempty"`
	Results []result `json:"results"`
}

var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+([\d.]+) ns/op(.*)$`)

// deriveSpeedups annotates paired variants (-cpu suffixes stripped):
//
//   - "X" + "XWarm…": any warm variant ("XWarm", "XWarmOneDirty", …)
//     gains speedup_vs_cold against the name before "Warm", so the
//     cold/warm ratio is recorded in the artifact itself (e.g.
//     BenchmarkStage1Templatization vs its cache-hit and
//     incremental-one-target-dirty variants).
//   - "X" + "XFloat32": the base variant gains speedup_vs_float32 —
//     here the suffixed run is the full-precision baseline and the bare
//     name is the quantized fast path (BenchmarkFig7InferenceTime).
//   - "X" + "XParallel": the parallel variant gains speedup_vs_1core
//     against the bare name, whose config pins the worker pool to one
//     (BenchmarkFig7InferenceTimeParallel runs it at GOMAXPROCS).
func deriveSpeedups(d *doc) {
	byBase := make(map[string]float64)
	for _, r := range d.Results {
		base, _, _ := strings.Cut(r.Name, "-")
		byBase[base] = r.NsPerOp
	}
	addMetric := func(r *result, key string, v float64) {
		if r.Metrics == nil {
			r.Metrics = make(map[string]float64)
		}
		r.Metrics[key] = v
	}
	for i := range d.Results {
		r := &d.Results[i]
		if r.NsPerOp == 0 {
			continue
		}
		base, _, _ := strings.Cut(r.Name, "-")
		if at := strings.LastIndex(base, "Warm"); at > 0 {
			if cold, ok := byBase[base[:at]]; ok {
				addMetric(r, "speedup_vs_cold", cold/r.NsPerOp)
			}
		}
		if f32, ok := byBase[base+"Float32"]; ok {
			addMetric(r, "speedup_vs_float32", f32/r.NsPerOp)
		}
		if stem, found := strings.CutSuffix(base, "Parallel"); found && stem != "" {
			if one, ok := byBase[stem]; ok {
				addMetric(r, "speedup_vs_1core", one/r.NsPerOp)
			}
		}
	}
}

func main() {
	out := flag.String("out", "", "write parsed results to this JSON file")
	flag.Parse()

	var d doc
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		switch {
		case strings.HasPrefix(line, "goos: "):
			d.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			d.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			d.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			d.Pkg = strings.TrimPrefix(line, "pkg: ")
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		iters, _ := strconv.ParseInt(m[2], 10, 64)
		ns, _ := strconv.ParseFloat(m[3], 64)
		r := result{Name: m[1], Iters: iters, NsPerOp: ns}
		// The tail alternates "value unit" pairs (custom b.ReportMetric
		// metrics plus -benchmem's B/op and allocs/op).
		fields := strings.Fields(m[4])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			if r.Metrics == nil {
				r.Metrics = make(map[string]float64)
			}
			r.Metrics[fields[i+1]] = v
		}
		d.Results = append(d.Results, r)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: read:", err)
		os.Exit(1)
	}
	deriveSpeedups(&d)
	if *out == "" {
		return
	}
	if len(d.Results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines parsed; not writing", *out)
		os.Exit(1)
	}
	buf, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: marshal:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: write:", err)
		os.Exit(1)
	}
}
