// Command vega-serve runs VEGA as a long-lived backend-generation
// service: weights and Stage 1 artifacts are loaded once into an
// immutable snapshot, then concurrent "generate a backend / a module / a
// single function for this target's .td files" requests are served
// through a bounded scheduler with admission control, per-request
// deadlines, and graceful degradation under pressure.
//
// Usage:
//
//	vega-serve [-addr :8080] [-queue 64] [-workers N] [-deadline 60s]
//	           [-load ckpt.vega | -epochs 14] [-beam 1]
//	           [-metrics out.jsonl] [-pprof localhost:6060]
//	           [-save-on-exit ckpt.vega]
//
// Endpoints:
//
//	POST /v1/generate   {"target":"RISCV","module":"EMI","function":"getRelocType",
//	                     "max_functions":0,"deadline_ms":0,"verify":false}
//	POST /admin/reload  {"checkpoint":"path/to/new.vega"}   (health-checked cutover)
//	GET  /healthz       status, active snapshot, pressure
//	GET  /v1/targets    request vocabulary (targets, modules, functions)
//
// "verify":true additionally executes each generated function against
// the reference backend and runs counterexample-guided repair on
// divergences; every function in the response then carries "verify"
// ("passed", "repaired", "failed", or "no-oracle"), plus repair rounds
// and the final counterexample when it still fails, and the response
// totals verified/repaired/repair_failed. Under pressure >= 0.75 the
// degrade ladder keeps verification but skips repair rounds (the
// response is marked degraded with the rung's reason).
//
// Responses are 200 (optionally marked degraded), 429 + Retry-After when
// the admission queue is at its hard cap, or 504 when the per-request
// deadline expires — never an unhandled 500.
//
// SIGTERM/Ctrl-C drains in-flight requests, optionally checkpoints the
// live snapshot (-save-on-exit), and flushes/closes the metrics sink.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"vega/internal/core"
	"vega/internal/corpus"
	"vega/internal/obs"
	"vega/internal/serve"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		queueCap  = flag.Int("queue", 64, "admission queue hard cap; beyond it requests are shed with 429")
		workers   = flag.Int("workers", 2, "concurrent generation requests (worker pool size)")
		deadline  = flag.Duration("deadline", 60*time.Second, "default per-request deadline")
		maxDl     = flag.Duration("max-deadline", 5*time.Minute, "upper clamp on request-supplied deadlines")
		drain     = flag.Duration("drain", 30*time.Second, "snapshot-swap and shutdown drain timeout")
		loadCk    = flag.String("load", "", "serve this checkpoint (skips startup training)")
		saveExit  = flag.String("save-on-exit", "", "write the live snapshot's checkpoint here on shutdown")
		epochs    = flag.Int("epochs", 14, "startup fine-tuning epochs when -load is empty")
		samples   = flag.Int("samples", 2600, "max deduplicated training samples")
		seed      = flag.Int64("seed", 1, "random seed")
		arch      = flag.String("arch", "transformer", "model architecture: transformer, gru, bert")
		beam      = flag.Int("beam", 1, "beam width for full-fidelity decoding (degrades to greedy under pressure)")
		quantize  = flag.Bool("quantize", false, "decode every request through int8 quantized weights (identical output, lower latency)")
		beamEsc   = flag.Bool("beam-escalate", false, "greedy-first beam decoding: re-decode with the beam only below the confidence threshold")
		genWork   = flag.Int("gen-workers", 0, "decode workers inside one request (0 = NumCPU)")
		kworkers  = flag.Int("kernel-workers", 0, "goroutines per large matmul kernel (0 = GOMAXPROCS)")
		s1workers = flag.Int("stage1-workers", 0, "parallel templatization workers (0 = NumCPU)")
		s1cache   = flag.String("stage1-cache", "", "directory for the per-group content-addressed Stage 1 cache")
		fleetName = flag.String("targets", "standard", "target fleet: standard, or extended (adds the VLIW, predicated, tensor, and RISC-V-extension families)")
		health    = flag.String("health-target", "RISCV", "target used for snapshot health-check smoke generations")
		metrics   = flag.String("metrics", "", "write serve spans and periodic metric snapshots to this JSON-lines file")
		pprofAt   = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	)
	flag.Parse()

	var o *obs.Obs
	if *metrics != "" {
		sink, err := obs.NewJSONLSink(*metrics)
		check(err)
		sink.FlushEvery(2 * time.Second)
		o = obs.New(sink)
		stopFlush := o.FlushEvery(10 * time.Second)
		obsCleanup = func() {
			stopFlush()
			o.Close()
		}
		defer obsCleanup()
	}
	if *pprofAt != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAt, nil); err != nil {
				fmt.Fprintln(os.Stderr, "vega-serve: pprof:", err)
			}
		}()
		fmt.Printf("pprof: http://%s/debug/pprof/\n", *pprofAt)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	cfg := core.DefaultConfig()
	cfg.Seed = *seed
	cfg.Train.Epochs = *epochs
	cfg.MaxSamples = *samples
	cfg.Arch = *arch
	cfg.BeamWidth = *beam
	cfg.Quantize = *quantize
	cfg.BeamEscalate = *beamEsc
	cfg.Workers = *genWork
	cfg.KernelWorkers = *kworkers
	cfg.Stage1Workers = *s1workers
	cfg.Stage1Cache = *s1cache
	cfg.Obs = o

	start := time.Now()
	fleet, err := corpus.Fleet(*fleetName)
	check(err)
	// The standard fleet stays resident; extended fleets stream so Stage 1
	// memory stays bounded by one function group at 50+ targets. Either
	// way every reload shares the same provider (reference backends and
	// rendered groups are reused across snapshots).
	var provider corpus.Provider
	if *fleetName == "standard" || *fleetName == "" {
		c, err := corpus.Build()
		check(err)
		provider = c
	} else {
		provider = corpus.NewStream(fleet)
	}

	buildPipeline := func(bctx context.Context, checkpoint string) (*core.Pipeline, error) {
		p, err := core.NewFromProvider(provider, cfg)
		if err != nil {
			return nil, err
		}
		if checkpoint != "" {
			if err := p.Load(checkpoint); err != nil {
				return nil, err
			}
			return p, nil
		}
		if _, err := p.TrainContext(bctx); err != nil {
			return nil, err
		}
		return p, nil
	}

	source := *loadCk
	if source == "" {
		fmt.Printf("vega-serve: no -load checkpoint; training at startup (%d epochs)\n", *epochs)
	}
	p, err := buildPipeline(ctx, *loadCk)
	check(err)
	if source == "" {
		source = "startup-train"
	}
	boot := serve.NewSnapshot("boot-1", source, p)
	check(boot.HealthCheck(ctx, *health))
	fmt.Printf("vega-serve: snapshot %s ready (%s) in %s\n", boot.ID, source, time.Since(start).Round(time.Second))

	srv := serve.New(serve.Config{
		Addr:            *addr,
		Workers:         *workers,
		QueueCap:        *queueCap,
		DefaultDeadline: *deadline,
		MaxDeadline:     *maxDl,
		DrainTimeout:    *drain,
		Policy:          serve.DefaultDegradePolicy(),
		HealthTarget:    *health,
		Loader:          buildPipeline,
		Obs:             o,
	}, boot)

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Printf("vega-serve: listening on %s (workers %d, queue %d, deadline %s)\n",
		*addr, *workers, *queueCap, *deadline)

	select {
	case err := <-errc:
		check(err)
	case <-ctx.Done():
		fmt.Fprintln(os.Stderr, "vega-serve: signal received; draining")
		o.Flush()
		shCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(shCtx); err != nil {
			fmt.Fprintln(os.Stderr, "vega-serve: shutdown:", err)
		}
		if *saveExit != "" {
			// The drain is complete, so the snapshot is quiescent: the
			// atomic checkpoint write (temp+fsync+rename) cannot race a
			// request and a crash mid-write leaves any previous file.
			if err := srv.Snapshot().Pipeline.Save(*saveExit); err != nil {
				fmt.Fprintln(os.Stderr, "vega-serve: save-on-exit:", err)
			} else {
				fmt.Printf("vega-serve: snapshot checkpointed to %s\n", *saveExit)
			}
		}
	}
	fmt.Println("vega-serve: bye")
}

// obsCleanup flushes and closes the metrics sink; set in main when
// -metrics is active so error exits (os.Exit skips defers) still flush.
var obsCleanup func()

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "vega-serve:", err)
		if obsCleanup != nil {
			obsCleanup()
		}
		os.Exit(1)
	}
}
